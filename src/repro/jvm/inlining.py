"""Inlining heuristics and inline-plan construction.

This module transcribes the paper's decision procedures exactly:

* :func:`optimizing_heuristic` — Figure 3.  Four ordered tests over
  (calleeSize, inlineDepth, callerSize) against the tuned parameters
  CALLEE_MAX_SIZE, ALWAYS_INLINE_SIZE, MAX_INLINE_DEPTH and
  CALLER_MAX_SIZE.
* :func:`hot_callsite_heuristic` — Figure 4.  Under the adaptive
  scenario, a call site found hot by the profiler is subject to a single
  test against HOT_CALLEE_MAX_SIZE.

:func:`build_inline_plan` applies the heuristics recursively the way the
optimizing compiler does: when a site is inlined, the callee's own call
sites become sites of the caller at ``depth + 1``, and the caller's
estimated size grows by the callee's size (minus the saved call
sequence) — so later decisions see the *current expanded* caller size,
exactly as in Jikes RVM.

Note the faithful quirk: ALWAYS_INLINE_SIZE is tested *before* the depth
and caller-size caps, so tiny methods are inlined regardless of depth.
For self-recursive tiny methods this would not terminate, so — like the
real VM's recursion guards — a hard implementation bound
:data:`HARD_DEPTH_LIMIT` (far above the tunable range of Table 1) stops
runaway expansion without interfering with tuning.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.jvm.callgraph import Program
from repro.jvm.methods import CALL_SEQUENCE_SIZE

__all__ = [
    "InliningParameters",
    "JIKES_DEFAULT_PARAMETERS",
    "NO_INLINING",
    "InlineDecision",
    "InlineAdvice",
    "optimizing_heuristic",
    "hot_callsite_heuristic",
    "InlinedBody",
    "ResidualCall",
    "InlinePlan",
    "ParamRegion",
    "ParamRegionBuilder",
    "build_inline_plan",
    "HARD_DEPTH_LIMIT",
]

#: absolute recursion guard for plan expansion (cf. module docstring);
#: strictly above the MAX_INLINE_DEPTH tuning range (1-15, Table 1)
HARD_DEPTH_LIMIT = 18


@dataclass(frozen=True)
class InliningParameters:
    """The five tunable parameters of Table 1.

    The genome the genetic algorithm evolves is exactly this 5-tuple of
    integers.  ``hot_callee_max_size`` is only consulted under the
    adaptive scenario (Table 4 reports it as "NA" for *Opt*).
    """

    callee_max_size: int
    always_inline_size: int
    max_inline_depth: int
    caller_max_size: int
    hot_callee_max_size: int

    def __post_init__(self) -> None:
        for name in (
            "callee_max_size",
            "always_inline_size",
            "max_inline_depth",
            "caller_max_size",
            "hot_callee_max_size",
        ):
            value = getattr(self, name)
            if not isinstance(value, (int,)) or isinstance(value, bool):
                raise ConfigurationError(f"{name} must be an int, got {value!r}")
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Genome encoding order used throughout the GA."""
        return (
            self.callee_max_size,
            self.always_inline_size,
            self.max_inline_depth,
            self.caller_max_size,
            self.hot_callee_max_size,
        )

    @classmethod
    def from_sequence(cls, values: Sequence[int]) -> "InliningParameters":
        """Decode a genome (sequence of 5 ints) into parameters."""
        if len(values) != 5:
            raise ConfigurationError(
                f"expected 5 parameter values, got {len(values)}"
            )
        return cls(*(int(v) for v in values))

    def __str__(self) -> str:
        return (
            f"[CALLEE_MAX={self.callee_max_size}, ALWAYS={self.always_inline_size}, "
            f"DEPTH={self.max_inline_depth}, CALLER_MAX={self.caller_max_size}, "
            f"HOT_CALLEE_MAX={self.hot_callee_max_size}]"
        )


#: the values shipped with Jikes RVM 2.3.3 (Table 4, "Default" column)
JIKES_DEFAULT_PARAMETERS = InliningParameters(
    callee_max_size=23,
    always_inline_size=11,
    max_inline_depth=5,
    caller_max_size=2048,
    hot_callee_max_size=135,
)

#: parameters that reject every inline candidate (the paper's
#: "no inlining" baseline of Figure 1)
NO_INLINING = InliningParameters(
    callee_max_size=0,
    always_inline_size=0,
    max_inline_depth=0,
    caller_max_size=0,
    hot_callee_max_size=0,
)


class InlineDecision(enum.Enum):
    """Outcome of a heuristic test, with the binding rule recorded."""

    YES_ALWAYS = "yes: callee below ALWAYS_INLINE_SIZE"
    YES_PASSED_ALL = "yes: passed all tests"
    YES_HOT = "yes: hot call site below HOT_CALLEE_MAX_SIZE"
    YES_ADVISED = "yes: forced by external advice"
    NO_CALLEE_TOO_BIG = "no: callee exceeds CALLEE_MAX_SIZE"
    NO_TOO_DEEP = "no: depth exceeds MAX_INLINE_DEPTH"
    NO_CALLER_TOO_BIG = "no: caller exceeds CALLER_MAX_SIZE"
    NO_HOT_CALLEE_TOO_BIG = "no: hot callee exceeds HOT_CALLEE_MAX_SIZE"
    NO_ADVISED = "no: forced by external advice"

    @property
    def inline(self) -> bool:
        """True when the decision is to inline."""
        return self.value.startswith("yes")


def optimizing_heuristic(
    callee_size: float,
    inline_depth: int,
    caller_size: float,
    params: InliningParameters,
) -> InlineDecision:
    """The paper's Figure 3, test for test.

    Parameters are the *current* estimated callee size, the inline depth
    at this site, and the caller's current (post-expansion) size.
    """
    if callee_size > params.callee_max_size:
        return InlineDecision.NO_CALLEE_TOO_BIG
    if callee_size < params.always_inline_size:
        return InlineDecision.YES_ALWAYS
    if inline_depth > params.max_inline_depth:
        return InlineDecision.NO_TOO_DEEP
    if caller_size > params.caller_max_size:
        return InlineDecision.NO_CALLER_TOO_BIG
    return InlineDecision.YES_PASSED_ALL


def hot_callsite_heuristic(
    callee_size: float,
    params: InliningParameters,
) -> InlineDecision:
    """The paper's Figure 4: single size test for profiler-hot sites."""
    if callee_size > params.hot_callee_max_size:
        return InlineDecision.NO_HOT_CALLEE_TOO_BIG
    return InlineDecision.YES_HOT


class InlineAdvice:
    """A consumable sequence of per-call-site inline decisions.

    The MCTS strategy (:mod:`repro.search.mcts`) tunes the inline
    decisions themselves rather than the five threshold parameters.
    :func:`build_inline_plan` consults the cursor at every *tunable*
    decision point, in the exact depth-first site order the expansion
    work-list visits them: a 0/1 from the sequence overrides the
    heuristic, and once the sequence is exhausted the heuristic decides
    as usual (the deterministic "default decision" rollout).  The
    :data:`HARD_DEPTH_LIMIT` recursion guard is not a tunable decision
    and never consumes advice.

    ``taken`` records every decision actually made — forced and
    heuristic fallback alike — so a caller can recover the full
    decision vector of a run.  Advised plans bypass the heuristic's
    threshold comparisons, so they carry no :class:`ParamRegion` and
    must never enter the parameter-keyed plan caches; the reference
    evaluation path (``VirtualMachine.run_advised``) guarantees that.
    """

    __slots__ = ("_decisions", "_pos", "taken")

    def __init__(self, decisions: Sequence[int] = ()) -> None:
        self._decisions = tuple(1 if int(d) else 0 for d in decisions)
        self._pos = 0
        self.taken: List[int] = []

    def override(self) -> Optional[bool]:
        """Next forced decision, or None once the sequence is spent."""
        if self._pos < len(self._decisions):
            value = self._decisions[self._pos] == 1
            self._pos += 1
            return value
        return None

    def note(self, inline: bool) -> None:
        """Record a decision that was actually made."""
        self.taken.append(1 if inline else 0)

    @property
    def consumed(self) -> int:
        """Number of forced decisions handed out so far."""
        return self._pos


#: unbounded upper limit for region bounds (any parameter value fits)
_REGION_UNBOUNDED = (1 << 62)


@dataclass(frozen=True)
class ParamRegion:
    """An axis-aligned box in the 5-dimensional parameter space.

    The box produced by one plan expansion is the set of parameter
    vectors for which *every* threshold comparison the expansion
    evaluated has the same outcome — and therefore (the expansion being
    deterministic) the set of vectors that yield the *identical* inline
    plan.  Bounds are inclusive on both sides, in the genome order of
    :meth:`InliningParameters.as_tuple`.
    """

    lo: Tuple[int, int, int, int, int]
    hi: Tuple[int, int, int, int, int]

    def contains(self, values: Sequence[int]) -> bool:
        """True when the parameter vector lies inside the box."""
        return all(l <= v <= h for l, v, h in zip(self.lo, values, self.hi))


class ParamRegionBuilder:
    """Accumulates the parameter-space invariants of one plan expansion.

    Every heuristic test is a comparison of an observed float quantity
    (callee size, depth, current caller size) against one of the five
    integer parameters.  Each executed comparison constrains the
    parameter to a half-line; intersecting all constraints yields the
    :class:`ParamRegion` on which the recorded plan is valid.  Because
    the parameters are integers, ``x > p`` and ``x < p`` convert to
    exact inclusive integer bounds via floor/ceil.
    """

    __slots__ = ("lo", "hi")

    def __init__(self) -> None:
        self.lo = [0, 0, 0, 0, 0]
        self.hi = [_REGION_UNBOUNDED] * 5

    def note_value_gt(self, index: int, value: float, outcome: bool) -> None:
        """Record a ``value > param`` test with its observed *outcome*."""
        if outcome:  # param < value  =>  param <= ceil(value) - 1
            bound = math.ceil(value) - 1
            if bound < self.hi[index]:
                self.hi[index] = bound
        else:  # param >= value  =>  param >= ceil(value)
            bound = math.ceil(value)
            if bound > self.lo[index]:
                self.lo[index] = bound

    def note_value_lt(self, index: int, value: float, outcome: bool) -> None:
        """Record a ``value < param`` test with its observed *outcome*."""
        if outcome:  # param > value  =>  param >= floor(value) + 1
            bound = math.floor(value) + 1
            if bound > self.lo[index]:
                self.lo[index] = bound
        else:  # param <= value  =>  param <= floor(value)
            bound = math.floor(value)
            if bound < self.hi[index]:
                self.hi[index] = bound

    def record_optimizing(
        self,
        decision: InlineDecision,
        callee_size: float,
        depth: int,
        caller_size: float,
    ) -> None:
        """Record the comparisons Figure 3 executed to reach *decision*.

        The heuristic short-circuits, so only the tests on the taken
        path constrain the region — exactly what keeps regions wide.
        """
        if decision is InlineDecision.NO_CALLEE_TOO_BIG:
            self.note_value_gt(0, callee_size, True)
            return
        self.note_value_gt(0, callee_size, False)
        if decision is InlineDecision.YES_ALWAYS:
            self.note_value_lt(1, callee_size, True)
            return
        self.note_value_lt(1, callee_size, False)
        if decision is InlineDecision.NO_TOO_DEEP:
            self.note_value_gt(2, depth, True)
            return
        self.note_value_gt(2, depth, False)
        self.note_value_gt(3, caller_size, decision is InlineDecision.NO_CALLER_TOO_BIG)

    def record_hot(self, decision: InlineDecision, callee_size: float) -> None:
        """Record the single Figure 4 comparison."""
        self.note_value_gt(
            4, callee_size, decision is InlineDecision.NO_HOT_CALLEE_TOO_BIG
        )

    def freeze(self) -> ParamRegion:
        """Snapshot the accumulated constraints as an immutable region."""
        return ParamRegion(lo=tuple(self.lo), hi=tuple(self.hi))


@dataclass(frozen=True)
class InlinedBody:
    """A callee body merged into the root method by the plan.

    Attributes
    ----------
    callee_id:
        The inlined method.
    depth:
        Inline depth of the site (1 = direct callee of the root).
    rate:
        Dynamic executions of this body per root invocation — the
        product of ``calls_per_invocation`` along the inlined path.
    """

    callee_id: int
    depth: int
    rate: float


@dataclass(frozen=True)
class ResidualCall:
    """A call that remains after inlining (charged call overhead and
    feeding the callee's invocation count).

    ``rate`` is dynamic calls per root invocation; ``hot`` records
    whether the profiler had flagged the underlying site.
    """

    callee_id: int
    rate: float
    hot: bool


@dataclass(frozen=True)
class InlinePlan:
    """Result of applying the heuristics to one root method.

    ``expanded_size`` is the static machine-size estimate after all
    inlining (each merged body contributes its size minus the saved call
    sequence); the compile-time model and the I-cache model both consume
    it.  ``inlined`` and ``residual`` drive the running-time model.
    """

    root_id: int
    params: InliningParameters
    expanded_size: float
    inlined: Tuple[InlinedBody, ...]
    residual: Tuple[ResidualCall, ...]
    decisions: Tuple[Tuple[int, InlineDecision], ...] = ()

    @property
    def inline_count(self) -> int:
        """Number of call sites the plan inlines (static)."""
        return len(self.inlined)

    @property
    def residual_call_rate(self) -> float:
        """Dynamic non-inlined calls per root invocation."""
        return sum(r.rate for r in self.residual)


def build_inline_plan(
    program: Program,
    root_id: int,
    params: InliningParameters,
    hot_sites: Optional[FrozenSet[Tuple[int, int]]] = None,
    use_hot_heuristic: bool = False,
    record_decisions: bool = False,
    region: Optional[ParamRegionBuilder] = None,
    advice: Optional[InlineAdvice] = None,
) -> InlinePlan:
    """Expand *root_id* under *params*, mirroring the opt compiler.

    Parameters
    ----------
    program:
        The program being compiled.
    root_id:
        Method the optimizing compiler is compiling.
    params:
        The five tuned parameters.
    hot_sites:
        ``(caller_id, site_index)`` pairs the profiler flagged hot; only
        consulted when ``use_hot_heuristic`` is true (adaptive scenario).
    use_hot_heuristic:
        Apply Figure 4 to hot sites (adaptive recompilation); the pure
        *Opt* scenario has no profile and always uses Figure 3.
    record_decisions:
        Keep a per-site decision trace (for tests and explanations);
        off by default in the hot tuning loop.
    region:
        Optional :class:`ParamRegionBuilder` accumulating the parameter
        bounds within which this exact plan is reproduced (the plan
        memoization tier of :mod:`repro.perf` relies on it).
    advice:
        Optional :class:`InlineAdvice` cursor overriding per-site
        decisions (MCTS search over inline decisions).  ``None`` — the
        universal case outside that strategy — changes nothing.
    """
    sizes = program.sizes
    hot = hot_sites if (use_hot_heuristic and hot_sites) else frozenset()

    inlined: List[InlinedBody] = []
    residual: List[ResidualCall] = []
    decisions: List[Tuple[int, InlineDecision]] = []
    expanded_size = float(sizes[root_id])

    # Explicit stack of (caller_method_id, site, depth, rate_multiplier).
    # A site's decision consumes the *current* expanded_size as the
    # caller size, so expansion order (depth-first, site order) matters
    # exactly as it does in the real compiler's work-list.
    stack: List[Tuple[int, int, float]] = []

    def push_sites(method_id: int, depth: int, multiplier: float) -> None:
        # reversed so the explicit stack pops sites in source order
        for site in reversed(program.sites_of(method_id)):
            stack.append((depth, multiplier, site))  # type: ignore[arg-type]

    push_sites(root_id, 1, 1.0)

    while stack:
        depth, multiplier, site = stack.pop()  # type: ignore[misc]
        callee_id = site.callee_id
        callee_size = float(sizes[callee_id])
        rate = multiplier * site.calls_per_invocation

        forced = None
        if depth > HARD_DEPTH_LIMIT:
            # implementation guard, no parameter involved: unconstrained
            decision = InlineDecision.NO_TOO_DEEP
        elif advice is not None and (forced := advice.override()) is not None:
            # an advised decision bypasses the threshold comparisons,
            # so it constrains no parameter region
            decision = (
                InlineDecision.YES_ADVISED if forced else InlineDecision.NO_ADVISED
            )
        elif depth == 1 and (site.caller_id, site.site_index) in hot:
            # Figure 4 applies to the hot call sites of the method being
            # recompiled; sites exposed by inlining (depth >= 2) are
            # ordinary compile-time decisions and use Figure 3.
            decision = hot_callsite_heuristic(callee_size, params)
            if region is not None:
                region.record_hot(decision, callee_size)
        else:
            decision = optimizing_heuristic(callee_size, depth, expanded_size, params)
            if region is not None:
                region.record_optimizing(decision, callee_size, depth, expanded_size)
        if advice is not None and depth <= HARD_DEPTH_LIMIT:
            advice.note(decision.inline)

        if record_decisions:
            decisions.append((callee_id, decision))

        if decision.inline:
            inlined.append(InlinedBody(callee_id=callee_id, depth=depth, rate=rate))
            expanded_size += max(callee_size - CALL_SEQUENCE_SIZE, 1.0)
            push_sites(callee_id, depth + 1, rate)
        else:
            residual.append(
                ResidualCall(
                    callee_id=callee_id,
                    rate=rate,
                    hot=(site.caller_id, site.site_index) in hot,
                )
            )

    return InlinePlan(
        root_id=root_id,
        params=params,
        expanded_size=expanded_size,
        inlined=tuple(inlined),
        residual=tuple(residual),
        decisions=tuple(decisions),
    )
