"""The paper's measurement methodology, literally (§5).

"We requested that the Java benchmark iterate at least twice.  The
first iteration will cause the program to be loaded, compiled, and
inlined according to the appropriate inlining heuristic.  We used this
iteration as our total time measure.  The remaining iterations should
involve no compilation; we use the best of the remaining runs as our
measure of running time."

The simulator is deterministic, so by default ``iterations=2`` and the
numbers equal the :class:`~repro.jvm.runtime.ExecutionReport` fields
directly.  With ``noise_sd > 0`` every iteration's execution time gets
multiplicative lognormal measurement noise (OS jitter, timer
granularity), and the best-of-remaining rule earns its keep — exactly
why the paper ran extra iterations on real hardware.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.jvm.callgraph import Program
from repro.jvm.inlining import InliningParameters
from repro.jvm.runtime import ExecutionReport, VirtualMachine
from repro.rng import rng_for

__all__ = ["Measurement", "measure_benchmark"]


@dataclass(frozen=True)
class Measurement:
    """Outcome of one measured benchmark execution."""

    benchmark: str
    total_seconds: float
    running_seconds: float
    iteration_seconds: Tuple[float, ...]
    report: ExecutionReport

    @property
    def iterations(self) -> int:
        """Number of timed iterations (including the first)."""
        return 1 + len(self.iteration_seconds)


def measure_benchmark(
    vm: VirtualMachine,
    program: Program,
    params: InliningParameters,
    iterations: int = 2,
    noise_sd: float = 0.0,
    seed: int = 0,
) -> Measurement:
    """Measure *program* with the paper's §5 protocol.

    Parameters
    ----------
    iterations:
        Total iterations (>= 2): one compile-inclusive first iteration
        plus ``iterations - 1`` steady-state ones.
    noise_sd:
        Standard deviation of multiplicative lognormal measurement
        noise per iteration (0 = deterministic).
    seed:
        Noise stream seed (keyed also by benchmark and params so
        different configurations see independent jitter).
    """
    if iterations < 2:
        raise ConfigurationError(
            f"the methodology needs at least 2 iterations, got {iterations}"
        )
    if noise_sd < 0:
        raise ConfigurationError(f"noise_sd must be non-negative, got {noise_sd}")

    report = vm.run(program, params)

    if noise_sd > 0.0:
        # Stream layout: one substream per measured quantity, derived
        # from a common configuration key —
        #   "<base>:total"  first (compile-inclusive) iteration's noise
        #   "<base>:iters"  steady-state iterations, drawn in order
        # Independent substreams mean the total-time draw cannot shift
        # the per-iteration jitter (and vice versa): adding iterations
        # or ignoring the total reproduces the exact same draws, which
        # keeps best-of-remaining comparisons across iteration counts
        # prefix-stable.
        base = f"measure:{program.name}:{params.as_tuple()}:{vm.machine.name}"
        total_rng = rng_for(f"{base}:total", seed)
        iter_rng = rng_for(f"{base}:iters", seed)
        total = report.total_seconds * math.exp(float(total_rng.normal(0.0, noise_sd)))
        runs = tuple(
            report.running_seconds * math.exp(float(iter_rng.normal(0.0, noise_sd)))
            for _ in range(iterations - 1)
        )
    else:
        total = report.total_seconds
        runs = tuple(report.running_seconds for _ in range(iterations - 1))

    return Measurement(
        benchmark=program.name,
        total_seconds=total,
        running_seconds=min(runs),
        iteration_seconds=runs,
        report=report,
    )
