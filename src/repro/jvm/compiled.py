"""Compiled-method records shared by both compilers.

A :class:`CompiledMethod` is everything the runtime needs to account for
a method version: its installed code size, what it cost to compile, its
per-invocation execution cost, and its *residual call edges* (the calls
its code still makes after inlining, which feed invocation-count
propagation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import CompilationError

__all__ = ["CompiledMethod"]


@dataclass(frozen=True)
class CompiledMethod:
    """One compiled version of a method.

    Attributes
    ----------
    method_id:
        The method this code implements.
    opt_level:
        0 for the baseline compiler, >=1 for the optimizing compiler.
    code_size:
        Installed machine code size (estimated instructions), after any
        inlining growth.
    compile_cycles:
        One-time cost of producing this version.
    cycles_per_invocation:
        Execution cost of one invocation, *excluding* I-cache effects
        (applied globally by the runtime).
    residual_forward:
        ``(callee_id, rate)`` pairs for remaining calls to *other*
        methods; ``rate`` is dynamic calls per invocation of this one.
    residual_self_rate:
        Remaining self-recursive calls per invocation (resolved with the
        geometric closed form during propagation); must stay < 1.
    inline_count:
        Number of call sites inlined into this version (diagnostics).
    """

    method_id: int
    opt_level: int
    code_size: float
    compile_cycles: float
    cycles_per_invocation: float
    residual_forward: Tuple[Tuple[int, float], ...]
    residual_self_rate: float = 0.0
    inline_count: int = 0

    def __post_init__(self) -> None:
        if self.code_size <= 0:
            raise CompilationError(
                f"method {self.method_id}: code_size must be positive, got {self.code_size}"
            )
        if self.compile_cycles < 0:
            raise CompilationError(
                f"method {self.method_id}: negative compile_cycles"
            )
        if self.cycles_per_invocation < 0:
            raise CompilationError(
                f"method {self.method_id}: negative cycles_per_invocation"
            )
        if not 0.0 <= self.residual_self_rate < 1.0:
            raise CompilationError(
                f"method {self.method_id}: residual_self_rate "
                f"{self.residual_self_rate} outside [0, 1)"
            )
