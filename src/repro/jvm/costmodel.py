"""Tunable constants of the simulator's cost physics.

Collected in one dataclass so the ablation benches can switch individual
effects off (e.g. the I-cache penalty) and so tests can probe
monotonicity properties against a known configuration.  The default
values are calibrated so the *shapes* of the paper's results hold (see
DESIGN.md §2 and EXPERIMENTS.md); none of the downstream code hard-codes
them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Constants of the execution/compilation cost model.

    Attributes
    ----------
    work_cycle_scale:
        Cycles per abstract work unit (method bodies express work in
        units; see :mod:`repro.jvm.bytecode`).
    inline_opt_bonus:
        Fraction of an inlined body's work eliminated by the extra
        optimization inlining enables (constant propagation into the
        callee, better scheduling across the boundary, ...).
    inline_bonus_decay:
        Per-depth geometric decay of that bonus — the second-order
        opportunities of an inlined-into-inlined body are smaller.
    call_mispredict_weight:
        Fraction of the architecture's branch-misprediction cost charged
        per dynamic call (indirect-call prediction pressure).
    compile_superlinear_scale:
        Method size (estimated instructions) at which per-instruction
        compile cost has doubled — models the superlinear dataflow
        passes that make huge post-inlining methods disproportionately
        expensive to compile (why CALLER_MAX_SIZE matters).
    baseline_code_bloat:
        Size multiplier of baseline-compiled code relative to the
        estimated optimizing-compiler size (the baseline compiler emits
        naive code).
    opt_code_density:
        Size multiplier of opt-compiled code before inlining growth.
    adaptive_mix_fraction:
        Fraction of a hot method's first-iteration invocations that run
        at baseline speed before the adaptive system promotes it.
    sampling_overhead:
        Fractional slowdown of the first iteration due to the adaptive
        system's timer-based sampling.
    hot_share_at_full:
        A method whose share of running time reaches this value counts
        its code fully toward the hot working set; smaller shares count
        proportionally (smooth I-cache occupancy model).
    """

    work_cycle_scale: float = 1.0
    inline_opt_bonus: float = 0.12
    inline_bonus_decay: float = 0.85
    call_mispredict_weight: float = 0.30
    compile_superlinear_scale: float = 550.0
    baseline_code_bloat: float = 1.30
    opt_code_density: float = 0.95
    adaptive_mix_fraction: float = 0.28
    sampling_overhead: float = 0.01
    hot_share_at_full: float = 0.002

    def __post_init__(self) -> None:
        if self.work_cycle_scale <= 0:
            raise ConfigurationError("work_cycle_scale must be positive")
        if not 0 <= self.inline_opt_bonus < 1:
            raise ConfigurationError("inline_opt_bonus must be in [0, 1)")
        if not 0 < self.inline_bonus_decay <= 1:
            raise ConfigurationError("inline_bonus_decay must be in (0, 1]")
        if self.call_mispredict_weight < 0:
            raise ConfigurationError("call_mispredict_weight must be non-negative")
        if self.compile_superlinear_scale <= 0:
            raise ConfigurationError("compile_superlinear_scale must be positive")
        if self.baseline_code_bloat < 1:
            raise ConfigurationError("baseline_code_bloat must be >= 1")
        if self.opt_code_density <= 0:
            raise ConfigurationError("opt_code_density must be positive")
        if not 0 <= self.adaptive_mix_fraction <= 1:
            raise ConfigurationError("adaptive_mix_fraction must be in [0, 1]")
        if self.sampling_overhead < 0:
            raise ConfigurationError("sampling_overhead must be non-negative")
        if self.hot_share_at_full <= 0:
            raise ConfigurationError("hot_share_at_full must be positive")

    def inline_bonus_at_depth(self, depth: int) -> float:
        """Work-elimination fraction for a body inlined at *depth*."""
        return self.inline_opt_bonus * self.inline_bonus_decay ** max(depth - 1, 0)

    def without_icache(self) -> "CostModel":
        """Convenience copy for machine-level ablation (paired with a
        machine whose ``icache_miss_penalty`` is zeroed)."""
        return self  # penalty lives on the machine; kept for symmetry

    def scaled(self, **overrides) -> "CostModel":
        """Return a copy with selected constants replaced."""
        return replace(self, **overrides)


#: the calibrated default used by all experiments
DEFAULT_COST_MODEL = CostModel()
