"""Method metadata and Jikes-style size estimation.

The inlining heuristic of Figure 3 tests three quantities: the callee's
*estimated size*, the current *inline depth*, and the caller's (current,
post-expansion) *estimated size*.  "Estimated size" in Jikes RVM is a
prediction of how many machine instructions the optimizing compiler will
emit for a method; :func:`estimate_machine_size` computes the analogous
quantity from the abstract bytecode mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import WorkloadError
from repro.jvm.bytecode import EXPANSION, InstructionKind, MethodBody

__all__ = ["MethodInfo", "estimate_machine_size", "CALL_SEQUENCE_SIZE"]

#: machine instructions of call/return boilerplate saved when a call site
#: is inlined (argument marshalling, call, prologue, epilogue)
CALL_SEQUENCE_SIZE = 4.0


def estimate_machine_size(body: MethodBody) -> float:
    """Estimate machine instructions the opt compiler emits for *body*.

    Mirrors Jikes RVM's ``VM_OptMethodSummary`` estimator: a weighted sum
    of bytecodes by expansion factor.  This is a *static* property (no
    loop weighting) — it feeds both the heuristic's size tests and the
    compile-time model.
    """
    return float(sum(EXPANSION[k] * c for k, c in body.mix))


@dataclass
class MethodInfo:
    """A method in a simulated program.

    Attributes
    ----------
    method_id:
        Dense index into :attr:`repro.jvm.callgraph.Program.methods`.
    name:
        Human-readable ``Class.method`` style name.
    body:
        The abstract bytecode body.
    estimated_size:
        Cached :func:`estimate_machine_size` of the body; the quantity
        the Figure 3/4 tests compare against the tuned parameters.
    """

    method_id: int
    name: str
    body: MethodBody
    estimated_size: float = field(init=False)

    def __post_init__(self) -> None:
        if self.method_id < 0:
            raise WorkloadError(f"method_id must be non-negative, got {self.method_id}")
        if not self.name:
            raise WorkloadError("method name must be non-empty")
        self.estimated_size = estimate_machine_size(self.body)

    @property
    def bytecode_size(self) -> int:
        """Static bytecode count of the body."""
        return self.body.bytecode_size

    @property
    def work_units(self) -> float:
        """Dynamic work per invocation, pre-architecture scaling."""
        return self.body.work_units

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MethodInfo(id={self.method_id}, name={self.name!r}, "
            f"size={self.estimated_size:.0f}, work={self.work_units:.0f})"
        )
