"""Online sampling profiler (adaptive scenario).

Under *Adapt*, Jikes RVM's adaptive optimization system samples the
running program to find (a) methods where time is being spent and (b)
frequently executed call edges [Arnold et al., OOPSLA'00].  The
simulator computes the exact quantities the sampler estimates — per-
method time under the baseline code and per-edge dynamic call counts —
directly from the weighted call graph, which corresponds to an unbiased
sampler in the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

import numpy as np

from repro.jvm.callgraph import Program
from repro.jvm.compiled import CompiledMethod

__all__ = ["ExecutionProfile", "profile_baseline"]


@dataclass(frozen=True)
class ExecutionProfile:
    """What the profiler learned about one (program, code-state) pair.

    Attributes
    ----------
    method_times:
        Cycles per outer iteration attributed to each method.
    invocations:
        Per-method invocation counts per outer iteration.
    edge_calls:
        Dynamic calls per outer iteration for every static call site,
        keyed by ``(caller_id, site_index)``.
    """

    method_times: np.ndarray
    invocations: np.ndarray
    edge_calls: Mapping[Tuple[int, int], float]

    @property
    def total_time(self) -> float:
        """Total profiled cycles per iteration."""
        return float(self.method_times.sum())

    @property
    def total_calls(self) -> float:
        """Total dynamic calls per iteration."""
        return float(sum(self.edge_calls.values()))

    def time_share(self, method_id: int) -> float:
        """Fraction of total time spent in *method_id*."""
        total = self.total_time
        if total <= 0:
            return 0.0
        return float(self.method_times[method_id]) / total

    def hot_methods(self, min_share: float) -> Tuple[int, ...]:
        """Methods whose time share meets *min_share*, hottest first."""
        total = self.total_time
        if total <= 0:
            return ()
        shares = self.method_times / total
        hot = np.flatnonzero(shares >= min_share)
        order = np.argsort(-self.method_times[hot], kind="stable")
        return tuple(int(m) for m in hot[order])

    def hot_sites(self, min_call_share: float) -> FrozenSet[Tuple[int, int]]:
        """Call sites whose dynamic call share meets *min_call_share*."""
        total = self.total_calls
        if total <= 0:
            return frozenset()
        threshold = min_call_share * total
        return frozenset(
            key for key, calls in self.edge_calls.items() if calls >= threshold
        )


def profile_baseline(
    program: Program,
    baseline_versions: Mapping[int, CompiledMethod],
) -> ExecutionProfile:
    """Profile one iteration of *program* running baseline code.

    Baseline code performs no inlining, so invocation counts equal the
    program's intrinsic counts; per-method time is count x per-invocation
    baseline cycles; per-edge calls are count x site weight.
    """
    counts = program.baseline_invocations()
    times = np.zeros(len(program), dtype=np.float64)
    for mid, version in baseline_versions.items():
        times[mid] = counts[mid] * version.cycles_per_invocation

    edge_calls: Dict[Tuple[int, int], float] = {}
    for site in program.call_sites:
        calls = counts[site.caller_id] * site.calls_per_invocation
        if calls > 0.0:
            edge_calls[(site.caller_id, site.site_index)] = calls

    return ExecutionProfile(
        method_times=times,
        invocations=counts,
        edge_calls=edge_calls,
    )
