"""The virtual machine driver.

Implements the paper's measurement methodology (§5): each benchmark is
iterated at least twice; the *first* iteration — which triggers loading,
compilation and inlining — yields **total time**, and the best of the
remaining iterations (no compilation left) yields **running time**.

In the simulator this splits cleanly:

* *running time* is the steady-state cost of one iteration over the
  final code state, scaled by the I-cache pressure factor;
* *total time* is all compilation cycles plus the first iteration's
  execution, which under *Adapt* also includes the mixed
  baseline/optimized execution of hot methods before their promotion
  and the sampler's overhead.

Methods whose every call was absorbed by inlining are never invoked and
therefore never compiled — a real and important effect: aggressive
inlining *reduces* the number of compilations while increasing the cost
of each.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.arch.base import MachineModel
from repro.errors import SimulationError
from repro.jvm.adaptive import AdaptiveOptimizationSystem
from repro.jvm.callgraph import Program
from repro.jvm.codecache import CodeCache
from repro.jvm.compiled import CompiledMethod
from repro.jvm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.jvm.inlining import InliningParameters
from repro.jvm.opt_compiler import OptimizingCompiler
from repro.jvm.scenario import CompilationScenario
from repro.telemetry import emit as telemetry_emit

__all__ = ["ExecutionReport", "VirtualMachine", "propagate_invocations"]

_log = logging.getLogger("repro.jvm.runtime")


def propagate_invocations(
    program: Program,
    versions: Mapping[int, CompiledMethod],
) -> np.ndarray:
    """Per-method invocation counts for one iteration over *versions*.

    Counts flow along the compiled code's *residual* call edges (inlined
    calls never invoke the callee).  Valid in a single index-order pass
    because residual edges are forward; self-recursion is folded with
    the geometric closed form.
    """
    counts = np.zeros(len(program), dtype=np.float64)
    counts[program.entry_id] = 1.0
    for mid in range(len(program)):
        c = counts[mid]
        if c <= 0.0:
            continue
        version = versions.get(mid)
        if version is None:
            raise SimulationError(
                f"method {mid} of {program.name!r} is invoked but has no compiled version"
            )
        if version.residual_self_rate > 0.0:
            c = c / (1.0 - version.residual_self_rate)
            counts[mid] = c
        for callee_id, rate in version.residual_forward:
            counts[callee_id] += c * rate
    return counts


@dataclass(frozen=True)
class ExecutionReport:
    """Timing and diagnostics of one benchmark run.

    Cycle fields are per the methodology above; ``*_seconds`` properties
    convert with the machine clock.
    """

    benchmark: str
    scenario: str
    machine: MachineModel
    params: InliningParameters
    running_cycles: float
    compile_cycles: float
    first_iteration_exec_cycles: float
    icache_factor: float
    hot_code_size: float
    installed_code_size: float
    methods_compiled_baseline: int
    methods_compiled_opt: int
    inline_sites: int

    def __post_init__(self) -> None:
        if self.running_cycles < 0 or self.compile_cycles < 0:
            raise SimulationError("negative cycle counts in report")

    @property
    def total_cycles(self) -> float:
        """Compilation plus the first iteration's execution."""
        return self.compile_cycles + self.first_iteration_exec_cycles

    @property
    def running_seconds(self) -> float:
        """Steady-state iteration time in seconds."""
        return self.machine.cycles_to_seconds(self.running_cycles)

    @property
    def total_seconds(self) -> float:
        """First-iteration (compile-inclusive) time in seconds."""
        return self.machine.cycles_to_seconds(self.total_cycles)

    @property
    def compile_seconds(self) -> float:
        """Compilation time in seconds."""
        return self.machine.cycles_to_seconds(self.compile_cycles)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.benchmark:<12} {self.scenario:<6} "
            f"run={self.running_seconds:8.3f}s total={self.total_seconds:8.3f}s "
            f"compile={self.compile_seconds:7.3f}s icache={self.icache_factor:5.3f} "
            f"opt={self.methods_compiled_opt:4d} inl={self.inline_sites:5d}"
        )


class VirtualMachine:
    """Runs programs under a compilation scenario on a machine model.

    ``memoize=True`` (the default) routes :meth:`run` through the
    :mod:`repro.perf` evaluation accelerator: compiled methods are
    cached per parameter region and whole reports are memoized by plan
    signature, with bitwise-identical results.  ``memoize=False`` keeps
    the original per-method implementation, retained as the reference
    for equivalence tests and benchmarks (:meth:`run_reference` always
    uses it).
    """

    def __init__(
        self,
        machine: MachineModel,
        scenario: CompilationScenario,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        memoize: bool = True,
    ) -> None:
        self.machine = machine
        self.scenario = scenario
        self.cost_model = cost_model
        self._optimizer = OptimizingCompiler(machine, cost_model)
        self._aos = AdaptiveOptimizationSystem(machine, scenario, cost_model)
        if memoize:
            from repro.perf.engine import EvaluationAccelerator

            self._accelerator = EvaluationAccelerator(self)
        else:
            self._accelerator = None

    @property
    def perf_stats(self):
        """Accelerator counters, or None when memoization is off."""
        if self._accelerator is None:
            return None
        return self._accelerator.stats

    def clear_report_memo(self) -> None:
        """Drop the accelerator's per-signature report memos only.

        Plan caches and adaptive skeletons stay warm; the next run of
        each signature redoes its accounting.  The steady-state
        benchmarks use this between rounds.  No-op without memoization.
        """
        if self._accelerator is not None:
            self._accelerator.clear_report_memo()

    def run(
        self,
        program: Program,
        params: InliningParameters,
        attach_params: bool = True,
    ) -> ExecutionReport:
        """Run *program* with the heuristic fixed to *params*.

        ``attach_params=False`` lets a memoizing VM answer a report-memo
        hit with the shared memoized report object instead of a copy
        stamped with the caller's *params* — every other field is
        unaffected.  The fitness layer uses this (no metric reads
        ``params``); callers that inspect ``report.params`` should keep
        the default.  Without memoization the flag is a no-op.

        Graceful degradation: if the accelerated path raises, the run
        falls back to :meth:`run_reference` (bitwise-identical results,
        no caching) and counts a ``degraded_runs`` event — an
        accelerator bug costs throughput, never correctness.  Errors
        the reference raises too (a genuinely impossible simulation)
        still propagate, from the reference path.
        """
        if self._accelerator is not None:
            try:
                return self._accelerator.run(program, params, attach_params)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                self._accelerator.stats.degraded_runs += 1
                _log.warning(
                    "accelerated run of %s failed; degrading to run_reference",
                    program.name,
                    exc_info=True,
                )
                telemetry_emit(
                    "perf.degraded_run",
                    error=type(exc).__name__,
                    program=program.name,
                )
                return self.run_reference(program, params)
        return self.run_reference(program, params)

    def run_reference(
        self, program: Program, params: InliningParameters
    ) -> ExecutionReport:
        """The seed implementation, bypassing every cache."""
        if self.scenario.is_adaptive:
            return self._run_adaptive(program, params)
        return self._run_optimizing(program, params)

    def run_advised(
        self,
        program: Program,
        params: InliningParameters,
        advice,
    ) -> ExecutionReport:
        """Run with per-site inline decisions forced by *advice*.

        *advice* is an :class:`~repro.jvm.inlining.InlineAdvice` cursor
        consumed in the deterministic order plan expansion visits call
        sites (methods in ``sorted(reachable_methods())`` order under
        *Opt*, promotion order under *Adapt*).  Always takes the
        reference path: advised plans bypass the heuristic's threshold
        comparisons, so they carry no parameter region and must never
        enter the accelerator's parameter-keyed plan caches.
        """
        if self.scenario.is_adaptive:
            return self._run_adaptive(program, params, advice=advice)
        return self._run_optimizing(program, params, advice=advice)

    def __getstate__(self):
        # Accelerator caches are rebuilt on the other side of a pickle
        # (multiprocess workers): ship only whether one was enabled.
        state = self.__dict__.copy()
        state["_accelerator"] = self._accelerator is not None
        return state

    def __setstate__(self, state):
        memoized = state.pop("_accelerator")
        self.__dict__.update(state)
        if memoized:
            from repro.perf.engine import EvaluationAccelerator

            self._accelerator = EvaluationAccelerator(self)
        else:
            self._accelerator = None

    # ------------------------------------------------------------------
    def _run_optimizing(
        self, program: Program, params: InliningParameters, advice=None
    ) -> ExecutionReport:
        versions: Dict[int, CompiledMethod] = {}
        for mid in sorted(program.reachable_methods()):
            versions[mid] = self._optimizer.compile(
                program, mid, params, level=self.scenario.opt_level, advice=advice
            )

        counts = propagate_invocations(program, versions)
        invoked = counts > 0.0

        compile_cycles = 0.0
        inline_sites = 0
        n_opt = 0
        cache = CodeCache(self.machine, self.cost_model)
        times = np.zeros(len(program), dtype=np.float64)
        for mid, version in versions.items():
            if not invoked[mid]:
                continue
            compile_cycles += version.compile_cycles
            inline_sites += version.inline_count
            n_opt += 1
            cache.install(mid, version.code_size)
            times[mid] = counts[mid] * version.cycles_per_invocation

        factor, hot_size = cache.execution_factor(times)
        running = float(times.sum()) * factor

        return ExecutionReport(
            benchmark=program.name,
            scenario=self.scenario.name,
            machine=self.machine,
            params=params,
            running_cycles=running,
            compile_cycles=compile_cycles,
            first_iteration_exec_cycles=running,
            icache_factor=factor,
            hot_code_size=hot_size,
            installed_code_size=cache.total_code_size,
            methods_compiled_baseline=0,
            methods_compiled_opt=n_opt,
            inline_sites=inline_sites,
        )

    # ------------------------------------------------------------------
    def _run_adaptive(
        self, program: Program, params: InliningParameters, advice=None
    ) -> ExecutionReport:
        result = self._aos.run(program, params, advice=advice)
        counts = propagate_invocations(program, result.final_versions)

        cache = CodeCache(self.machine, self.cost_model)
        times = np.zeros(len(program), dtype=np.float64)
        inline_sites = 0
        for mid, version in result.final_versions.items():
            if counts[mid] <= 0.0:
                continue
            cache.install(mid, version.code_size)
            times[mid] = counts[mid] * version.cycles_per_invocation
            inline_sites += version.inline_count

        factor, hot_size = cache.execution_factor(times)
        running_raw = float(times.sum())
        running = running_raw * factor

        # First iteration: for the warm-up fraction of the run the whole
        # program executes baseline code (profiling hasn't promoted
        # anything yet); the rest runs the final code state.  The
        # baseline phase is inlining-independent, which is what dilutes
        # inlining's total-time gains under Adapt relative to its
        # running-time gains (paper Figure 1b vs 1a).
        warmup = self.cost_model.adaptive_mix_fraction
        baseline_running = result.profile.total_time
        first_iter = warmup * baseline_running + (1.0 - warmup) * running
        first_iter *= 1.0 + self.cost_model.sampling_overhead

        return ExecutionReport(
            benchmark=program.name,
            scenario=self.scenario.name,
            machine=self.machine,
            params=params,
            running_cycles=running,
            compile_cycles=result.compile_cycles,
            first_iteration_exec_cycles=first_iter,
            icache_factor=factor,
            hot_code_size=hot_size,
            installed_code_size=cache.total_code_size,
            methods_compiled_baseline=len(result.baseline_versions),
            methods_compiled_opt=len(result.promoted),
            inline_sites=inline_sites,
        )
