"""Code-space accounting and the instruction-cache pressure model.

Aggressive inlining's indirect cost is a larger runtime footprint and
more I-cache misses (paper §1).  The simulator models this as a smooth
multiplicative penalty on running time computed from the *hot working
set*: the code of methods weighted by their share of running time.

The penalty function is deliberately smooth and saturating —

``factor = 1 + penalty * x / (1 + x)``, ``x = max(0, hot/capacity - 1)``

— so the GA sees a gradient rather than a cliff, and pathological bloat
cannot produce unbounded slowdowns (real miss rates saturate too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.arch.base import MachineModel
from repro.jvm.costmodel import CostModel

__all__ = ["CodeCache", "hot_code_size", "pressure_factor"]


def hot_code_size(
    code_sizes: np.ndarray,
    method_times: np.ndarray,
    hot_share_at_full: float,
) -> float:
    """Weighted hot working-set size.

    A method whose share of running time is at least ``hot_share_at_full``
    contributes its full code size; colder methods contribute
    proportionally to their share.  Methods that never run contribute
    nothing.
    """
    total = float(method_times.sum())
    if total <= 0.0:
        return 0.0
    shares = method_times / total
    weights = np.minimum(shares / hot_share_at_full, 1.0)
    return float(np.dot(code_sizes, weights))


def pressure_factor(hot_size: float, capacity: float, penalty: float) -> float:
    """Multiplicative running-time factor for a given hot set size."""
    if hot_size <= capacity or penalty == 0.0:
        return 1.0
    overflow = hot_size / capacity - 1.0
    return 1.0 + penalty * overflow / (1.0 + overflow)


@dataclass
class CodeCache:
    """Tracks installed compiled code and evaluates cache pressure.

    One instance per VM run.  ``install`` is called by the compilers;
    ``execution_factor`` is evaluated once the run's per-method times
    are known.
    """

    machine: MachineModel
    cost_model: CostModel

    def __post_init__(self) -> None:
        self._installed: Dict[int, float] = {}

    def install(self, method_id: int, code_size: float) -> None:
        """Record (or replace) the compiled code of a method."""
        self._installed[method_id] = float(code_size)

    def installed_size(self, method_id: int) -> float:
        """Code size currently installed for *method_id* (0 if none)."""
        return self._installed.get(method_id, 0.0)

    @property
    def total_code_size(self) -> float:
        """Total installed code across all methods."""
        return float(sum(self._installed.values()))

    @property
    def method_count(self) -> int:
        """Number of methods with installed code."""
        return len(self._installed)

    def sizes_array(self, n_methods: int) -> np.ndarray:
        """Dense array of installed code sizes."""
        sizes = np.zeros(n_methods, dtype=np.float64)
        for mid, size in self._installed.items():
            sizes[mid] = size
        return sizes

    def execution_factor(self, method_times: np.ndarray) -> Tuple[float, float]:
        """Return ``(icache_factor, hot_size)`` for the given profile."""
        sizes = self.sizes_array(len(method_times))
        hot = hot_code_size(sizes, method_times, self.cost_model.hot_share_at_full)
        factor = pressure_factor(
            hot, self.machine.icache_capacity, self.machine.icache_miss_penalty
        )
        return factor, hot
