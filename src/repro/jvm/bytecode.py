"""Abstract bytecode model.

Real Jikes RVM decides inlining from an *estimated machine-instruction
size* computed from a method's bytecodes.  We model a method body as a
histogram over a small abstract instruction alphabet
(:class:`InstructionMix`); each kind carries

* an *expansion factor* — how many machine instructions one such
  bytecode typically lowers to (drives the size estimate the heuristic
  tests), and
* a *work weight* — relative dynamic cost per execution (drives the
  running-time model).

This keeps the simulator mechanistic (sizes and costs are derived from
the same underlying body, as in a real VM) without simulating
instruction semantics, which the tuning loop never observes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import WorkloadError

__all__ = ["InstructionKind", "InstructionMix", "MethodBody"]


class InstructionKind(enum.Enum):
    """Abstract bytecode categories with (expansion, work-weight) traits."""

    #: stack/local data movement (aload, istore, dup, ...)
    MOVE = "move"
    #: integer/float arithmetic and comparisons
    ARITH = "arith"
    #: object field / array element access (getfield, aaload, ...)
    MEMORY = "memory"
    #: conditional and unconditional control flow
    BRANCH = "branch"
    #: object allocation (new, newarray)
    ALLOC = "alloc"
    #: method invocation opcodes (invokevirtual et al.)
    INVOKE = "invoke"
    #: method returns
    RETURN = "return"


#: machine instructions generated per bytecode of each kind
#: (used by :func:`repro.jvm.methods.estimate_machine_size`)
EXPANSION: Dict[InstructionKind, float] = {
    InstructionKind.MOVE: 1.0,
    InstructionKind.ARITH: 1.2,
    InstructionKind.MEMORY: 2.2,
    InstructionKind.BRANCH: 1.5,
    InstructionKind.ALLOC: 6.0,
    InstructionKind.INVOKE: 4.0,
    InstructionKind.RETURN: 2.0,
}

#: relative dynamic cycles per executed bytecode of each kind, *excluding*
#: call overhead (which the architecture model charges per dynamic call)
WORK_WEIGHT: Dict[InstructionKind, float] = {
    InstructionKind.MOVE: 0.8,
    InstructionKind.ARITH: 1.0,
    InstructionKind.MEMORY: 2.5,
    InstructionKind.BRANCH: 1.4,
    InstructionKind.ALLOC: 12.0,
    InstructionKind.INVOKE: 0.0,  # charged separately as call overhead
    InstructionKind.RETURN: 0.5,
}


@dataclass(frozen=True)
class InstructionMix:
    """An immutable histogram of bytecode counts by kind."""

    counts: Tuple[Tuple[InstructionKind, int], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[InstructionKind, int]) -> "InstructionMix":
        """Build a mix from a ``{kind: count}`` mapping, dropping zeros."""
        items = []
        for kind, count in mapping.items():
            if not isinstance(kind, InstructionKind):
                raise WorkloadError(f"not an InstructionKind: {kind!r}")
            if count < 0:
                raise WorkloadError(f"negative instruction count for {kind}: {count}")
            if count:
                items.append((kind, int(count)))
        items.sort(key=lambda item: item[0].value)
        return cls(counts=tuple(items))

    def __iter__(self) -> Iterator[Tuple[InstructionKind, int]]:
        return iter(self.counts)

    def count(self, kind: InstructionKind) -> int:
        """Number of bytecodes of *kind* in this mix."""
        for k, c in self.counts:
            if k is kind:
                return c
        return 0

    @property
    def total(self) -> int:
        """Total bytecode count."""
        return sum(c for _, c in self.counts)


@dataclass(frozen=True)
class MethodBody:
    """The simulated body of a method.

    Attributes
    ----------
    mix:
        Static bytecode histogram.
    loop_weight:
        Average number of times each bytecode executes per method
        invocation.  Loop-heavy numeric kernels (compress, mpegaudio)
        have a large ``loop_weight``; straight-line glue code has ~1.
    """

    mix: InstructionMix
    loop_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.loop_weight <= 0:
            raise WorkloadError(f"loop_weight must be positive, got {self.loop_weight}")
        if self.mix.total <= 0:
            raise WorkloadError("method body must contain at least one bytecode")

    @property
    def bytecode_size(self) -> int:
        """Static number of bytecodes in the body."""
        return self.mix.total

    @property
    def work_units(self) -> float:
        """Abstract dynamic work per invocation (pre-architecture).

        The optimizing compiler's speed factor and the architecture's
        cycle weights scale this into cycles.
        """
        static = sum(WORK_WEIGHT[k] * c for k, c in self.mix)
        return static * self.loop_weight

    @property
    def invoke_count(self) -> int:
        """Number of static call sites implied by the body."""
        return self.mix.count(InstructionKind.INVOKE)
