"""Weighted dynamic call graphs.

A :class:`Program` is the unit the virtual machine runs: a set of
methods, an entry point, and weighted call sites.  Call-site weights are
``calls_per_invocation`` — the average number of times the site executes
per invocation of its enclosing method — which is what a real VM's edge
profiler measures and what drives both invocation-count propagation and
hot-call-site detection.

Structural restriction
----------------------
Call edges are *forward* (``caller_id < callee_id``) or *self-recursive*
(``caller_id == callee_id``).  Forward edges make exact invocation-count
propagation a single pass in index order; self edges model recursion and
are resolved with the geometric-series closed form (a method whose self
site runs ``c`` times per invocation executes ``1/(1-c)`` times per
external call).  Mutual recursion is not modelled; the tuning loop is
insensitive to it because the heuristic only ever sees sizes and depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.jvm.methods import MethodInfo

__all__ = ["CallSite", "Program", "MAX_SELF_CALLS_PER_INVOCATION"]

#: self-recursive sites must converge: calls/invocation strictly below 1
MAX_SELF_CALLS_PER_INVOCATION = 0.95


@dataclass(frozen=True)
class CallSite:
    """A static call site with its profiled execution weight.

    Attributes
    ----------
    caller_id / callee_id:
        Method indices; ``callee_id >= caller_id`` (see module docs).
    site_index:
        Position of the site within the caller (0-based); distinguishes
        multiple sites calling the same callee.
    calls_per_invocation:
        Average executions of this site per caller invocation.
    """

    caller_id: int
    callee_id: int
    site_index: int
    calls_per_invocation: float

    def __post_init__(self) -> None:
        if self.calls_per_invocation < 0:
            raise WorkloadError(
                f"calls_per_invocation must be non-negative, got {self.calls_per_invocation}"
            )
        if self.callee_id < self.caller_id:
            raise WorkloadError(
                f"back edge {self.caller_id}->{self.callee_id}: only forward or "
                "self-recursive call edges are supported"
            )
        if self.is_recursive and self.calls_per_invocation > MAX_SELF_CALLS_PER_INVOCATION:
            raise WorkloadError(
                f"self-recursive site on method {self.caller_id} has "
                f"calls_per_invocation={self.calls_per_invocation} >= "
                f"{MAX_SELF_CALLS_PER_INVOCATION}; recursion would not converge"
            )

    @property
    def is_recursive(self) -> bool:
        """True for self-recursive sites (caller calls itself)."""
        return self.caller_id == self.callee_id


class Program:
    """An immutable simulated program: methods + entry + call sites."""

    def __init__(
        self,
        name: str,
        methods: Sequence[MethodInfo],
        call_sites: Iterable[CallSite],
        entry_id: int = 0,
    ) -> None:
        if not methods:
            raise WorkloadError(f"program {name!r} has no methods")
        self.name = name
        self.methods: Tuple[MethodInfo, ...] = tuple(methods)
        for index, method in enumerate(self.methods):
            if method.method_id != index:
                raise WorkloadError(
                    f"method at position {index} has method_id {method.method_id}; "
                    "methods must be densely indexed"
                )
        if not 0 <= entry_id < len(self.methods):
            raise WorkloadError(f"entry_id {entry_id} out of range for {len(self.methods)} methods")
        self.entry_id = entry_id

        sites: List[CallSite] = sorted(
            call_sites, key=lambda s: (s.caller_id, s.site_index)
        )
        self._sites_by_caller: Dict[int, Tuple[CallSite, ...]] = {}
        seen: Set[Tuple[int, int]] = set()
        for site in sites:
            if site.caller_id >= len(self.methods) or site.callee_id >= len(self.methods):
                raise WorkloadError(
                    f"call site {site.caller_id}->{site.callee_id} references unknown method"
                )
            key = (site.caller_id, site.site_index)
            if key in seen:
                raise WorkloadError(
                    f"duplicate site_index {site.site_index} in method {site.caller_id}"
                )
            seen.add(key)
            self._sites_by_caller.setdefault(site.caller_id, ())
        grouped: Dict[int, List[CallSite]] = {}
        for site in sites:
            grouped.setdefault(site.caller_id, []).append(site)
        self._sites_by_caller = {cid: tuple(ss) for cid, ss in grouped.items()}
        self.call_sites: Tuple[CallSite, ...] = tuple(sites)

        for cid, group in self._sites_by_caller.items():
            self_rate = sum(s.calls_per_invocation for s in group if s.is_recursive)
            if self_rate > MAX_SELF_CALLS_PER_INVOCATION:
                raise WorkloadError(
                    f"method {cid} has total self-recursive call rate {self_rate:.3f} "
                    f">= {MAX_SELF_CALLS_PER_INVOCATION}; recursion would not converge"
                )

        # dense numpy views used by the hot evaluation loops
        self.sizes = np.array([m.estimated_size for m in self.methods], dtype=np.float64)
        self.work = np.array([m.work_units for m in self.methods], dtype=np.float64)

        self._reachable: Optional[frozenset] = None
        self._base_counts: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.methods)

    def method(self, method_id: int) -> MethodInfo:
        """Return the method with the given dense index."""
        return self.methods[method_id]

    def sites_of(self, caller_id: int) -> Tuple[CallSite, ...]:
        """Call sites contained in method *caller_id* (possibly empty)."""
        return self._sites_by_caller.get(caller_id, ())

    @property
    def total_estimated_size(self) -> float:
        """Sum of all methods' estimated sizes (loaded-code volume)."""
        return float(self.sizes.sum())

    def reachable_methods(self) -> frozenset:
        """Method ids reachable from the entry via call sites."""
        if self._reachable is None:
            seen: Set[int] = set()
            stack = [self.entry_id]
            while stack:
                mid = stack.pop()
                if mid in seen:
                    continue
                seen.add(mid)
                for site in self.sites_of(mid):
                    if site.callee_id not in seen:
                        stack.append(site.callee_id)
            self._reachable = frozenset(seen)
        return self._reachable

    # ------------------------------------------------------------------
    # baseline invocation counts (no inlining)
    # ------------------------------------------------------------------
    def baseline_invocations(self) -> np.ndarray:
        """Per-method invocation counts with *no* inlining.

        Entry executes once; counts propagate along call edges in index
        order (valid because edges are forward), with self-recursion
        folded via the geometric closed form.  Methods unreachable from
        the entry have count zero.  The result is cached; callers must
        not mutate it.
        """
        if self._base_counts is None:
            counts = np.zeros(len(self.methods), dtype=np.float64)
            counts[self.entry_id] = 1.0
            for mid in range(len(self.methods)):
                if counts[mid] == 0.0:
                    continue
                self_rate = 0.0
                for site in self.sites_of(mid):
                    if site.is_recursive:
                        self_rate += site.calls_per_invocation
                if self_rate > 0.0:
                    counts[mid] /= max(1.0 - self_rate, 1e-9)
                for site in self.sites_of(mid):
                    if not site.is_recursive:
                        counts[site.callee_id] += counts[mid] * site.calls_per_invocation
            self._base_counts = counts
            self._base_counts.flags.writeable = False
        return self._base_counts

    def fingerprint(self) -> str:
        """Stable content hash of the program structure.

        Covers everything the simulator's numbers depend on: method
        sizes and work units, the entry point, and every call site with
        its weight.  Two programs with equal fingerprints produce equal
        :class:`~repro.jvm.runtime.ExecutionReport` numbers under any
        parameters, which is what makes the fingerprint a safe component
        of persistent evaluation-store context keys.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.blake2b(digest_size=16)
            digest.update(self.name.encode("utf-8"))
            digest.update(str(self.entry_id).encode("ascii"))
            for method in self.methods:
                digest.update(
                    f"|m{method.method_id}:{method.estimated_size!r}:"
                    f"{method.work_units!r}:{method.bytecode_size}".encode("ascii")
                )
            for site in self.call_sites:
                digest.update(
                    f"|s{site.caller_id}:{site.site_index}:{site.callee_id}:"
                    f"{site.calls_per_invocation!r}".encode("ascii")
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # export / debugging
    # ------------------------------------------------------------------
    def to_dot(self, max_methods: int = 200) -> str:
        """Render the call graph in Graphviz DOT format (truncated)."""
        lines = [f'digraph "{self.name}" {{']
        reachable = sorted(self.reachable_methods())[:max_methods]
        shown = set(reachable)
        for mid in reachable:
            method = self.methods[mid]
            lines.append(
                f'  m{mid} [label="{method.name}\\nsize={method.estimated_size:.0f}"];'
            )
        for site in self.call_sites:
            if site.caller_id in shown and site.callee_id in shown:
                lines.append(
                    f"  m{site.caller_id} -> m{site.callee_id} "
                    f'[label="{site.calls_per_invocation:.2g}"];'
                )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, methods={len(self.methods)}, "
            f"sites={len(self.call_sites)})"
        )
