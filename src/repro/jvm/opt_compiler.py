"""The optimizing compiler.

This is where the tuned heuristic acts.  Compiling a method at level
``L >= 1``:

1. builds an inline plan with :func:`repro.jvm.inlining.build_inline_plan`
   (Figure 3, plus Figure 4 for profiler-hot sites under the adaptive
   scenario);
2. derives the installed code size from the plan's static expansion;
3. charges compile time proportional to the expanded size with a
   superlinear correction — the mechanism that makes an overly
   aggressive CALLER_MAX_SIZE blow up total time, as the paper observes
   for the Jikes default of 2048;
4. computes per-invocation execution cycles: the method's own work plus
   absorbed inlined work (discounted by the inlining-enabled
   optimization bonus, decaying with depth) at the level's speed factor,
   plus call overhead for every residual call.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.arch.base import MachineModel
from repro.errors import CompilationError
from repro.jvm.callgraph import Program
from repro.jvm.compiled import CompiledMethod
from repro.jvm.costmodel import CostModel
from repro.jvm.inlining import (
    InlineAdvice,
    InliningParameters,
    InlinePlan,
    ParamRegion,
    ParamRegionBuilder,
    build_inline_plan,
)

__all__ = ["OptimizingCompiler"]


class OptimizingCompiler:
    """Multi-level optimizing compiler with heuristic-driven inlining."""

    def __init__(self, machine: MachineModel, cost_model: CostModel) -> None:
        self.machine = machine
        self.cost_model = cost_model

    def effective_call_cost(self) -> float:
        """Cycles charged per dynamic call (overhead + prediction)."""
        return (
            self.machine.call_overhead_cycles
            + self.cost_model.call_mispredict_weight
            * self.machine.branch_misprediction_cycles
        )

    def compile_cycles_for_size(self, expanded_size: float, level: int) -> float:
        """Compile cost of a method of *expanded_size* at *level*.

        Superlinear in size: per-instruction cost doubles at
        ``compile_superlinear_scale`` (global dataflow passes).
        """
        rate = self.machine.compile_rate(level)
        superlinear = 1.0 + expanded_size / self.cost_model.compile_superlinear_scale
        return rate * expanded_size * superlinear

    def compile(
        self,
        program: Program,
        method_id: int,
        params: InliningParameters,
        level: Optional[int] = None,
        hot_sites: Optional[FrozenSet[Tuple[int, int]]] = None,
        use_hot_heuristic: bool = False,
        plan: Optional[InlinePlan] = None,
        advice: Optional[InlineAdvice] = None,
    ) -> CompiledMethod:
        """Produce an optimized version of *method_id* under *params*.

        A precomputed *plan* may be supplied (the evaluator caches plans
        across methods compiled with identical parameters); it must have
        been built for the same method and parameters.  *advice*
        overrides per-site inline decisions during plan expansion (MCTS
        search); advised compilations must stay out of the
        parameter-keyed plan caches, which the reference path
        guarantees.
        """
        if level is None:
            level = self.machine.max_opt_level
        if level < 1:
            raise CompilationError(
                f"optimizing compiler requires level >= 1, got {level}"
            )
        method = program.method(method_id)
        cm = self.cost_model
        machine = self.machine

        if plan is None:
            plan = build_inline_plan(
                program,
                method_id,
                params,
                hot_sites=hot_sites,
                use_hot_heuristic=use_hot_heuristic,
                advice=advice,
            )
        elif plan.root_id != method_id or plan.params != params:
            raise CompilationError(
                f"supplied plan is for method {plan.root_id} with {plan.params}; "
                f"expected method {method_id} with {params}"
            )

        code_size = plan.expanded_size * cm.opt_code_density
        compile_cycles = self.compile_cycles_for_size(plan.expanded_size, level)

        speed = machine.speed_factor(level)
        absorbed_work = 0.0
        work = program.work
        for body in plan.inlined:
            bonus = cm.inline_bonus_at_depth(body.depth)
            absorbed_work += body.rate * work[body.callee_id] * (1.0 - bonus)

        call_cost = self.effective_call_cost()
        forward: Dict[int, float] = {}
        self_rate = 0.0
        call_rate = 0.0
        for residual in plan.residual:
            call_rate += residual.rate
            if residual.callee_id == method_id:
                self_rate += residual.rate
            else:
                forward[residual.callee_id] = (
                    forward.get(residual.callee_id, 0.0) + residual.rate
                )

        cycles = (
            (method.work_units + absorbed_work)
            * speed
            * cm.work_cycle_scale
            * machine.app_cycle_factor
            + call_rate * call_cost
        )

        return CompiledMethod(
            method_id=method_id,
            opt_level=level,
            code_size=code_size,
            compile_cycles=compile_cycles,
            cycles_per_invocation=cycles,
            residual_forward=tuple(sorted(forward.items())),
            residual_self_rate=self_rate,
            inline_count=plan.inline_count,
        )

    def compile_traced(
        self,
        program: Program,
        method_id: int,
        params: InliningParameters,
        level: int,
        hot_sites: Optional[FrozenSet[Tuple[int, int]]] = None,
        use_hot_heuristic: bool = False,
    ) -> Tuple[CompiledMethod, ParamRegion]:
        """Compile *method_id* and return the parameter region of the plan.

        Identical numbers to :meth:`compile`; additionally records which
        threshold comparisons fired during plan expansion, so the caller
        can reuse the returned :class:`CompiledMethod` verbatim for any
        parameter vector inside the region (the plan-memoization tier).
        """
        builder = ParamRegionBuilder()
        plan = build_inline_plan(
            program,
            method_id,
            params,
            hot_sites=hot_sites,
            use_hot_heuristic=use_hot_heuristic,
            region=builder,
        )
        version = self.compile(program, method_id, params, level=level, plan=plan)
        return version, builder.freeze()
