"""Fault tolerance for long-running tuning campaigns.

The supervision layer around the campaign runner, the multiprocess /
batched evaluators and the persistence layer:

* :mod:`repro.resilience.supervisor` — bounded retries with backoff +
  jitter, per-task timeouts, worker-death detection with pool rebuild,
  structured :class:`FailureReport` accounting;
* :mod:`repro.resilience.manifest` — crash-safe campaign manifests and
  per-task GA checkpoints for ``repro campaign --resume``;
* :mod:`repro.resilience.faults` — a deterministic, seeded fault
  injector (worker kill, evaluator exception, torn store write, slow
  task) used by ``tests/resilience`` to prove every recovery path.

See ``docs/RESILIENCE.md`` for the supervision model and the recovery
semantics.
"""

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    clear_fault_plan,
    get_fault_injector,
    install_fault_plan,
)
from repro.resilience.manifest import (
    CampaignManifest,
    campaign_fingerprint,
    checkpoint_path_for,
)
from repro.resilience.supervisor import (
    FailureReport,
    RetryPolicy,
    run_supervised,
    run_supervised_serial,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "install_fault_plan",
    "clear_fault_plan",
    "get_fault_injector",
    "CampaignManifest",
    "campaign_fingerprint",
    "checkpoint_path_for",
    "FailureReport",
    "RetryPolicy",
    "run_supervised",
    "run_supervised_serial",
]
