"""Crash-safe campaign manifests.

A campaign directory holds everything needed to resume an interrupted
arch x scenario x metric campaign:

``manifest.json``
    which grid cells are done (with their serialized
    :class:`~repro.core.tuner.TunedHeuristic` and bookkeeping), the
    campaign fingerprint, and the store path;
``checkpoints/<task>.json``
    the per-task GA checkpoint, written every generation by the worker
    that owns the cell.

The manifest is rewritten atomically (write-temp-then-``os.replace``)
after every cell completes, so a hard abort at any instant leaves
either the previous or the next consistent manifest on disk — never a
torn one.  ``repro campaign --resume <dir>`` then skips completed
cells entirely and restarts interrupted ones from their last GA
generation, with every previously simulated genome answered by the
shared evaluation store.

The *fingerprint* hashes everything that determines cell results (task
names, GA budget, seeds, library version); resuming with a different
configuration is refused rather than silently mixing results.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Sequence

from repro.errors import CampaignError
from repro.rng import stable_hash

__all__ = ["CampaignManifest", "campaign_fingerprint", "checkpoint_path_for"]

_FORMAT_VERSION = 1

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.@-]")


def _safe_filename(task_name: str) -> str:
    """Task name as a filesystem-safe checkpoint stem."""
    return _SAFE_NAME.sub("_", task_name)


def campaign_fingerprint(
    task_names: Sequence[str],
    ga_config,
    workload_seed: int,
    strategy: str = "ga",
) -> str:
    """Hash of everything that determines the campaign's results.

    The search strategy joins the hash only when it is not the default
    GA, so manifests written before strategies existed keep verifying.
    """
    import repro

    parts = [
        repro.__version__,
        ",".join(task_names),
        str(ga_config.population_size),
        str(ga_config.generations),
        str(ga_config.elitism),
        str(ga_config.crossover_rate),
        str(ga_config.early_stop_patience),
        str(ga_config.seed),
        str(workload_seed),
    ]
    if strategy != "ga":
        parts.append(f"strategy={strategy}")
    return f"{stable_hash('|'.join(parts)):016x}"


def checkpoint_path_for(campaign_dir: str, task_name: str) -> str:
    """Per-task GA checkpoint path inside *campaign_dir*."""
    return os.path.join(campaign_dir, "checkpoints", f"{_safe_filename(task_name)}.json")


class CampaignManifest:
    """Completed-cell ledger of one campaign directory."""

    def __init__(self, campaign_dir: str, fingerprint: str) -> None:
        self.campaign_dir = campaign_dir
        self.fingerprint = fingerprint
        self.store_path: Optional[str] = None
        #: task name -> serialized cell outcome (see record_done)
        self.cells: Dict[str, dict] = {}

    @property
    def path(self) -> str:
        return os.path.join(self.campaign_dir, "manifest.json")

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        campaign_dir: str,
        fingerprint: str,
        store_path: Optional[str],
    ) -> "CampaignManifest":
        """Start a fresh manifest (writes it immediately)."""
        os.makedirs(os.path.join(campaign_dir, "checkpoints"), exist_ok=True)
        manifest = cls(campaign_dir, fingerprint)
        manifest.store_path = store_path
        manifest.save()
        return manifest

    @classmethod
    def load(cls, campaign_dir: str) -> "CampaignManifest":
        """Read the manifest of an existing campaign directory."""
        path = os.path.join(campaign_dir, "manifest.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise CampaignError(
                f"cannot read campaign manifest {path!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CampaignError(f"corrupt campaign manifest {path!r}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise CampaignError(
                f"campaign manifest {path!r} has unsupported format "
                f"(version={payload.get('version') if isinstance(payload, dict) else '?'})"
            )
        try:
            manifest = cls(campaign_dir, str(payload["fingerprint"]))
            manifest.store_path = payload.get("store_path")
            manifest.cells = dict(payload.get("cells", {}))
        except (KeyError, TypeError) as exc:
            raise CampaignError(f"malformed campaign manifest {path!r}: {exc}") from exc
        return manifest

    @classmethod
    def open_or_create(
        cls,
        campaign_dir: str,
        fingerprint: str,
        store_path: Optional[str],
    ) -> "CampaignManifest":
        """Load an existing manifest (validating the fingerprint) or
        create a fresh one."""
        if os.path.exists(os.path.join(campaign_dir, "manifest.json")):
            manifest = cls.load(campaign_dir)
            manifest.require_fingerprint(fingerprint)
            os.makedirs(os.path.join(campaign_dir, "checkpoints"), exist_ok=True)
            return manifest
        return cls.create(campaign_dir, fingerprint, store_path)

    def require_fingerprint(self, fingerprint: str) -> None:
        """Refuse to mix results of different campaign configurations."""
        if self.fingerprint != fingerprint:
            raise CampaignError(
                f"campaign directory {self.campaign_dir!r} was created by a "
                f"different configuration (manifest fingerprint "
                f"{self.fingerprint}, requested {fingerprint}); use a fresh "
                "directory or rerun with the original configuration"
            )

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Atomically rewrite the manifest (temp file + ``os.replace``)."""
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "store_path": self.store_path,
            "cells": self.cells,
        }
        os.makedirs(self.campaign_dir, exist_ok=True)
        tmp_path = f"{self.path}.tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise CampaignError(
                f"cannot write campaign manifest {self.path!r}: {exc}"
            ) from exc

    def record_done(
        self,
        task_name: str,
        tuned_json: str,
        context: Optional[str],
        new_records: int,
        accelerator_stats: Optional[dict],
        attempts: int,
    ) -> None:
        """Mark one grid cell completed and persist the manifest."""
        self.cells[task_name] = {
            "status": "done",
            "tuned": json.loads(tuned_json),
            "context": context,
            "new_records": int(new_records),
            "accelerator_stats": accelerator_stats,
            "attempts": int(attempts),
        }
        self.save()

    # ------------------------------------------------------------------
    def is_done(self, task_name: str) -> bool:
        cell = self.cells.get(task_name)
        return bool(cell) and cell.get("status") == "done"

    def done_tasks(self) -> List[str]:
        return [name for name in self.cells if self.is_done(name)]

    def cell(self, task_name: str) -> dict:
        try:
            return self.cells[task_name]
        except KeyError:
            raise CampaignError(
                f"campaign manifest has no cell {task_name!r}"
            ) from None
