"""Deterministic fault injection for the resilience test suite.

A :class:`FaultInjector` is a set of named *sites* — places in the
production code that ask "should a fault fire here?" — each configured
with a seeded probability, an optional fire budget and an optional key
filter.  Draws are derived from :func:`repro.rng.stable_hash` over
``(seed, site, key)``, so the same plan fires at the same places on
every run, on every platform, with no shared state between processes.

Fire budgets (``max_fires``) are enforced with *marker files* created
``O_EXCL`` under the plan's ``marker_dir``: the first process to reach
the site claims the marker and fires; everyone else — including the
retry of a task whose first attempt was killed — sees the marker and
passes through cleanly.  That is exactly the semantics a recovery test
needs: the fault happens once, the retry succeeds.

Supported sites (the constants below):

``worker-kill``
    ``maybe_kill`` sends ``SIGKILL`` to the calling process —
    simulates a worker dying mid-task (OOM killer, segfault, operator).
``task-exception``
    ``maybe_raise`` raises :class:`InjectedFault` from a task body —
    simulates a transient evaluator failure.
``batch-kernel``
    ``maybe_raise`` from inside the generation-batched accelerator —
    exercises the graceful-degradation fallback to the serial path.
``torn-write``
    :meth:`EvaluationStore.record` writes only a prefix of the JSONL
    line and drops the append — simulates a crash mid-write.
``slow-task``
    ``maybe_delay`` sleeps for the spec's ``delay`` — exercises
    per-task timeouts.
``job-admit``
    ``maybe_raise`` inside the service daemon's submission path, after
    validation but before the journal write — exercises the API's
    structured ``internal`` error (and that a client retry of the same
    job key succeeds once the fire budget is spent).
``journal-io``
    ``maybe_raise`` just before the job journal rewrites its file —
    simulates a failing state disk at the daemon's most critical write.

The injector is test-only configuration: production code calls
:func:`get_fault_injector`, which returns ``None`` unless a plan was
installed in-process (:func:`install_fault_plan`) or — so spawned
worker processes inherit it — via the ``REPRO_FAULT_PLAN`` environment
variable holding the plan as JSON.  The ``None`` check is the entire
overhead of an undisturbed run.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.rng import stable_hash

__all__ = [
    "SITE_WORKER_KILL",
    "SITE_TASK_EXCEPTION",
    "SITE_BATCH_KERNEL",
    "SITE_TORN_WRITE",
    "SITE_SLOW_TASK",
    "SITE_JOB_ADMIT",
    "SITE_JOURNAL_IO",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "install_fault_plan",
    "clear_fault_plan",
    "get_fault_injector",
]

SITE_WORKER_KILL = "worker-kill"
SITE_TASK_EXCEPTION = "task-exception"
SITE_BATCH_KERNEL = "batch-kernel"
SITE_TORN_WRITE = "torn-write"
SITE_SLOW_TASK = "slow-task"
SITE_JOB_ADMIT = "job-admit"
SITE_JOURNAL_IO = "journal-io"

#: environment variable carrying the plan JSON into spawned workers
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """An exception raised on purpose by the fault injector.

    Deliberately *not* a :class:`repro.errors.ReproError`: injected
    faults model unexpected failures, so they must travel through the
    same handlers that catch arbitrary crashes.
    """

    def __init__(self, site: str, key: str = "") -> None:
        super().__init__(f"injected fault at {site!r}" + (f" ({key})" if key else ""))
        self.site = site
        self.key = key


@dataclass(frozen=True)
class FaultSpec:
    """One site's firing rule."""

    #: chance of firing per (site, key) draw; 1.0 fires deterministically
    probability: float = 1.0
    #: total fires allowed across all processes (None = unlimited)
    max_fires: Optional[int] = 1
    #: restrict firing to these keys (None = any key)
    keys: Optional[Tuple[str, ...]] = None
    #: sleep applied by ``maybe_delay`` when the site fires, seconds
    delay: float = 0.0

    def as_dict(self) -> dict:
        return {
            "probability": self.probability,
            "max_fires": self.max_fires,
            "keys": list(self.keys) if self.keys is not None else None,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        keys = data.get("keys")
        return cls(
            probability=float(data.get("probability", 1.0)),
            max_fires=data.get("max_fires"),
            keys=tuple(keys) if keys is not None else None,
            delay=float(data.get("delay", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault sites, serializable for worker processes."""

    sites: Dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0
    #: directory for cross-process fire-budget markers; required when
    #: any site has a finite ``max_fires`` and workers are processes
    marker_dir: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "marker_dir": self.marker_dir,
                "sites": {name: spec.as_dict() for name, spec in self.sites.items()},
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            sites={
                name: FaultSpec.from_dict(spec)
                for name, spec in data.get("sites", {}).items()
            },
            seed=int(data.get("seed", 0)),
            marker_dir=data.get("marker_dir"),
        )


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at production call sites."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: list = []  # (site, key) pairs fired by THIS process
        self._local_claims: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def should_fire(self, site: str, key: str = "") -> bool:
        """Decide (and claim budget) for one site visit."""
        spec = self.plan.sites.get(site)
        if spec is None or spec.probability <= 0.0:
            return False
        if spec.keys is not None and key not in spec.keys:
            return False
        if spec.probability < 1.0:
            draw = stable_hash(f"fault|{self.plan.seed}|{site}|{key}") / 2.0**64
            if draw >= spec.probability:
                return False
        if not self._claim(site, spec):
            return False
        self.fired.append((site, key))
        return True

    def _claim(self, site: str, spec: FaultSpec) -> bool:
        if spec.max_fires is None:
            return True
        if self.plan.marker_dir is not None:
            os.makedirs(self.plan.marker_dir, exist_ok=True)
            for i in range(spec.max_fires):
                marker = os.path.join(self.plan.marker_dir, f"{site}.{i}.fired")
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.write(fd, f"pid={os.getpid()}\n".encode())
                os.close(fd)
                return True
            return False
        used = self._local_claims.get(site, 0)
        if used >= spec.max_fires:
            return False
        self._local_claims[site] = used + 1
        return True

    # ------------------------------------------------------------------
    def maybe_raise(self, site: str, key: str = "") -> None:
        """Raise :class:`InjectedFault` if *site* fires."""
        if self.should_fire(site, key):
            raise InjectedFault(site, key)

    def maybe_kill(self, site: str = SITE_WORKER_KILL, key: str = "") -> None:
        """SIGKILL the calling process if *site* fires (no cleanup runs)."""
        if self.should_fire(site, key):
            os.kill(os.getpid(), signal.SIGKILL)

    def maybe_delay(self, site: str = SITE_SLOW_TASK, key: str = "") -> None:
        """Sleep the spec's ``delay`` if *site* fires."""
        if self.should_fire(site, key):
            spec = self.plan.sites[site]
            if spec.delay > 0.0:
                time.sleep(spec.delay)


# ----------------------------------------------------------------------
# installation / discovery
# ----------------------------------------------------------------------
_INJECTOR: Optional[FaultInjector] = None
_ENV_CHECKED = False


def install_fault_plan(plan: FaultPlan, propagate: bool = True) -> FaultInjector:
    """Install *plan* process-wide and return its injector.

    ``propagate=True`` also exports the plan via ``REPRO_FAULT_PLAN``
    so worker processes spawned afterwards pick it up on first use.
    """
    global _INJECTOR, _ENV_CHECKED
    _INJECTOR = FaultInjector(plan)
    _ENV_CHECKED = True
    if propagate:
        os.environ[PLAN_ENV_VAR] = plan.to_json()
    return _INJECTOR


def clear_fault_plan() -> None:
    """Remove the installed plan (and the environment hand-off)."""
    global _INJECTOR, _ENV_CHECKED
    _INJECTOR = None
    _ENV_CHECKED = False
    os.environ.pop(PLAN_ENV_VAR, None)


def get_fault_injector() -> Optional[FaultInjector]:
    """The process's injector, or None when no plan is configured.

    Checks the environment once per process, so spawned workers inherit
    the coordinator's plan without explicit plumbing.
    """
    global _INJECTOR, _ENV_CHECKED
    if _INJECTOR is not None:
        return _INJECTOR
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        text = os.environ.get(PLAN_ENV_VAR)
        if text:
            try:
                _INJECTOR = FaultInjector(FaultPlan.from_json(text))
            except (ValueError, KeyError, TypeError):
                _INJECTOR = None
    return _INJECTOR
