"""Supervised task execution over a process pool.

A days-long campaign must survive the failures that long runs actually
hit: a worker process dying (``BrokenProcessPool``), a transient
exception in one task, a task hanging.  :func:`run_supervised` wraps a
``ProcessPoolExecutor`` with

* **bounded retries** with exponential backoff and deterministic
  jitter (seeded, so reruns sleep the same schedule);
* **worker-death recovery**: when the pool breaks, every in-flight
  task is accounted a ``worker-death`` attempt, the pool is rebuilt
  from scratch, and tasks with attempts remaining are resubmitted;
* **per-task timeouts**: a task that exceeds ``RetryPolicy.timeout``
  is written off for that attempt; since a running future cannot be
  cancelled, the pool is rebuilt to reclaim the stuck worker;
* **structured failure accounting**: every failed attempt becomes a
  :class:`FailureReport`; callers receive the results that succeeded
  plus the full failure list instead of one opaque exception.

Tasks must be idempotent and deterministic (the campaign's are: genome
evaluation is pure and the store answer-or-simulate protocol makes
re-execution free), because a retried task simply runs again.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rng import stable_hash
from repro.telemetry import emit as telemetry_emit

__all__ = ["RetryPolicy", "FailureReport", "run_supervised", "run_supervised_serial"]

#: failure kinds recorded in FailureReport.kind
KIND_EXCEPTION = "exception"
KIND_WORKER_DEATH = "worker-death"
KIND_TIMEOUT = "timeout"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout knobs for supervised execution.

    ``max_attempts`` counts *attempts*, not retries: 3 means one
    initial try plus up to two retries.  The backoff before attempt
    ``n`` (n >= 2) is ``backoff_base * backoff_factor**(n - 2)``
    clamped to ``backoff_max``, scaled by a deterministic jitter in
    ``[1, 1 + jitter]`` derived from (seed, task, attempt) — reruns of
    the same campaign sleep identically, and simultaneous retries of
    different tasks de-synchronize.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    #: per-task wall-clock budget in seconds (None = no timeout)
    timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0 or self.jitter < 0:
            raise ConfigurationError("backoff and jitter values must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")

    def delay_before(
        self, task_name: str, attempt: int, slept: Optional[float] = None
    ) -> float:
        """Backoff before *attempt* (1-based) of *task_name*.

        When the policy has a ``timeout`` and *slept* (total backoff
        this task has already slept) is given, the delay is capped at
        the task's *remaining* sleep budget — cumulative backoff never
        exceeds the per-task timeout, so a retried task can never sleep
        past its deadline no matter how aggressive the backoff curve
        is.  The cap is pure arithmetic over the policy and *slept*;
        no clock is read here.
        """
        if attempt <= 1 or self.backoff_base <= 0.0:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 2)
        raw = min(raw, self.backoff_max)
        unit = stable_hash(f"backoff|{self.seed}|{task_name}|{attempt}") / 2.0**64
        delay = raw * (1.0 + self.jitter * unit)
        if self.timeout is not None and slept is not None:
            delay = min(delay, max(0.0, self.timeout - slept))
        return delay


@dataclass(frozen=True)
class FailureReport:
    """One failed attempt of one task."""

    task_name: str
    attempt: int
    kind: str  # "exception" | "worker-death" | "timeout"
    error_type: str
    message: str
    elapsed: float
    #: True when this failure exhausted the task's attempt budget
    fatal: bool = False

    def __str__(self) -> str:
        tail = " [fatal]" if self.fatal else ""
        return (
            f"{self.task_name} attempt {self.attempt}: {self.kind} "
            f"({self.error_type}: {self.message}) after {self.elapsed:.1f}s{tail}"
        )


def _emit_failure(report: FailureReport) -> None:
    """Mirror a failed attempt into the telemetry stream (no-op when off)."""
    telemetry_emit(
        "supervise.failure",
        task=report.task_name,
        attempt=report.attempt,
        kind=report.kind,
        error=report.error_type,
        message=report.message,
        fatal=report.fatal,
    )


@dataclass
class _TaskState:
    name: str
    payload: object
    attempts: int = 0
    ready_at: float = 0.0
    #: cumulative backoff scheduled for this task (caps future backoff
    #: at the remaining per-task timeout; see RetryPolicy.delay_before)
    slept: float = 0.0
    done: bool = False
    failed: bool = False


@dataclass
class _InFlight:
    state: _TaskState
    started: float
    timed_out: bool = False


def run_supervised_serial(
    payloads: Sequence[Tuple[str, object]],
    fn: Callable,
    policy: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[str, object], None]] = None,
) -> Tuple[Dict[str, object], List[FailureReport]]:
    """In-process equivalent of :func:`run_supervised` (no pool).

    Worker-death and timeout supervision do not apply; exceptions are
    retried under the same policy.  A task raising ``KeyboardInterrupt``
    or ``SystemExit`` propagates — operator aborts are not failures.
    """
    policy = policy or RetryPolicy()
    results: Dict[str, object] = {}
    failures: List[FailureReport] = []
    for name, payload in payloads:
        slept = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            delay = policy.delay_before(name, attempt, slept=slept)
            if delay > 0.0:
                time.sleep(delay)
                slept += delay
            # same clock as the pooled path: FailureReport.elapsed and
            # timeout accounting both read time.monotonic()
            started = time.monotonic()
            try:
                value = fn(payload)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                report = FailureReport(
                    task_name=name,
                    attempt=attempt,
                    kind=KIND_EXCEPTION,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    elapsed=time.monotonic() - started,
                    fatal=attempt >= policy.max_attempts,
                )
                failures.append(report)
                _emit_failure(report)
            else:
                results[name] = value
                if on_result is not None:
                    on_result(name, value)
                break
    return results, failures


def run_supervised(
    payloads: Sequence[Tuple[str, object]],
    fn: Callable,
    policy: Optional[RetryPolicy] = None,
    max_workers: int = 1,
    mp_context=None,
    on_result: Optional[Callable[[str, object], None]] = None,
    poll_interval: float = 0.05,
    on_pool_rebuild: Optional[Callable[[str], None]] = None,
) -> Tuple[Dict[str, object], List[FailureReport]]:
    """Run ``fn(payload)`` for every (name, payload), supervised.

    Returns ``(results, failures)``: results maps task names to return
    values for every task that eventually succeeded; failures records
    every failed attempt (a task may appear several times, the last one
    ``fatal`` if its budget ran out).  The function and payloads must
    be picklable and idempotent.

    ``on_result(name, value)`` fires in the coordinating process as
    each task completes — the campaign uses it to persist results
    incrementally, so a later crash costs only in-flight work.

    ``on_pool_rebuild(reason)`` fires in the coordinating process each
    time a broken pool is dropped, before any resubmission — the
    campaign uses it to verify shared resources the replacement workers
    will need (e.g. that the shared-memory workload archive still
    exists).  Exceptions from the hook are swallowed: supervision must
    proceed even when the callback's resource cannot be restored.
    """
    policy = policy or RetryPolicy()
    states = [_TaskState(name=name, payload=payload) for name, payload in payloads]
    results: Dict[str, object] = {}
    failures: List[FailureReport] = []
    pool: Optional[ProcessPoolExecutor] = None
    inflight: Dict[Future, _InFlight] = {}

    def fail(entry_state: _TaskState, kind: str, error: str, message: str, elapsed: float) -> None:
        fatal = entry_state.attempts >= policy.max_attempts
        report = FailureReport(
            task_name=entry_state.name,
            attempt=entry_state.attempts,
            kind=kind,
            error_type=error,
            message=message,
            elapsed=elapsed,
            fatal=fatal,
        )
        failures.append(report)
        _emit_failure(report)
        if fatal:
            entry_state.failed = True
        else:
            delay = policy.delay_before(
                entry_state.name,
                entry_state.attempts + 1,
                slept=entry_state.slept,
            )
            entry_state.slept += delay
            entry_state.ready_at = time.monotonic() + delay

    def rebuild_pool(reason: str) -> None:
        nonlocal pool
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        pool = None
        inflight.clear()
        telemetry_emit("supervise.pool_rebuild", reason=reason)
        if on_pool_rebuild is not None:
            try:
                on_pool_rebuild(reason)
            except Exception:  # pragma: no cover - hook must not kill supervision
                pass

    try:
        while True:
            now = time.monotonic()
            queued = [
                s for s in states if not s.done and not s.failed
                and not any(f.state is s for f in inflight.values())
            ]
            if not queued and not inflight:
                break
            submit_broken = False
            for state in queued:
                if state.ready_at > now:
                    continue
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=max_workers, mp_context=mp_context
                    )
                state.attempts += 1
                try:
                    future = pool.submit(fn, state.payload)
                except BrokenProcessPool:
                    # the pool died between iterations; charge the tasks
                    # that were on it and start over on a fresh pool
                    fail(
                        state,
                        KIND_WORKER_DEATH,
                        "BrokenProcessPool",
                        "pool was broken at submission",
                        0.0,
                    )
                    submit_broken = True
                    break
                inflight[future] = _InFlight(state=state, started=time.monotonic())
            if submit_broken:
                for future, entry in list(inflight.items()):
                    fail(
                        entry.state,
                        KIND_WORKER_DEATH,
                        "BrokenProcessPool",
                        "pool broke while the task was in flight",
                        time.monotonic() - entry.started,
                    )
                rebuild_pool("broken-at-submit")
                continue

            if not inflight:
                # every runnable task is sleeping out its backoff
                next_ready = min(
                    (s.ready_at for s in queued), default=time.monotonic()
                )
                time.sleep(max(0.0, min(next_ready - time.monotonic(), 1.0)))
                continue

            done, _ = wait(
                list(inflight), timeout=poll_interval, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for future in done:
                entry = inflight.pop(future)
                elapsed = time.monotonic() - entry.started
                try:
                    value = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    fail(
                        entry.state,
                        KIND_WORKER_DEATH,
                        "BrokenProcessPool",
                        "a worker process died while the task was in flight",
                        elapsed,
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    fail(entry.state, KIND_EXCEPTION, type(exc).__name__, str(exc), elapsed)
                else:
                    if entry.timed_out:
                        continue  # already written off by the timeout path
                    entry.state.done = True
                    results[entry.state.name] = value
                    if on_result is not None:
                        on_result(entry.state.name, value)

            if pool_broken:
                # the executor marks every other in-flight future broken
                # too; account them all here and start a fresh pool
                for future, entry in list(inflight.items()):
                    fail(
                        entry.state,
                        KIND_WORKER_DEATH,
                        "BrokenProcessPool",
                        "pool broke while the task was in flight",
                        time.monotonic() - entry.started,
                    )
                rebuild_pool("worker-death")
                continue

            if policy.timeout is not None:
                now = time.monotonic()
                stuck = [
                    (future, entry)
                    for future, entry in inflight.items()
                    if not entry.timed_out and now - entry.started > policy.timeout
                ]
                if stuck:
                    for future, entry in stuck:
                        fail(
                            entry.state,
                            KIND_TIMEOUT,
                            "TimeoutError",
                            f"task exceeded the {policy.timeout:.1f}s budget",
                            now - entry.started,
                        )
                        entry.timed_out = True
                    # a running future cannot be cancelled: tear the
                    # pool down to reclaim the stuck workers.  Other
                    # in-flight tasks are NOT charged an attempt — they
                    # were healthy; they just resubmit on the new pool.
                    for future, entry in list(inflight.items()):
                        if not entry.timed_out:
                            entry.state.attempts -= 1
                    rebuild_pool("timeout")
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return results, failures
