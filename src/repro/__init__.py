"""repro — reproduction of "Automatic Tuning of Inlining Heuristics"
(Cavazos & O'Boyle, SC 2005).

The library tunes the five parameters of a JIT compiler's inlining
heuristic with a genetic algorithm, off-line, per compilation scenario
and target architecture — and reproduces every table and figure of the
paper's evaluation against a simulated adaptive JVM.

Quickstart
----------
>>> from repro import (InliningTuner, TuningTask, Metric,
...                    SPECJVM98, PENTIUM4, OPTIMIZING)
>>> task = TuningTask(name="demo", scenario=OPTIMIZING,
...                   machine=PENTIUM4, metric=Metric.TOTAL)
>>> tuned = InliningTuner().tune(task, SPECJVM98.programs())
>>> tuned.params  # doctest: +SKIP
InliningParameters(...)

See ``examples/`` for runnable scripts and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.arch import MachineModel, PENTIUM4, POWERPC_G4, get_machine
from repro.core import (
    HeuristicEvaluator,
    InliningTuner,
    JIKES_DEFAULT_PARAMETERS,
    Metric,
    NO_INLINING,
    InliningParameters,
    STANDARD_TASKS,
    TABLE1_SPACE,
    TunedHeuristic,
    TuningTask,
    get_task,
)
from repro.errors import ReproError
from repro.jvm import (
    ADAPTIVE,
    OPTIMIZING,
    CompilationScenario,
    ExecutionReport,
    Program,
    VirtualMachine,
)
from repro.workloads import DACAPO_JBB, SPECJVM98, BenchmarkSpec, get_benchmark, get_suite

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # architectures
    "MachineModel",
    "PENTIUM4",
    "POWERPC_G4",
    "get_machine",
    # JVM simulator
    "ADAPTIVE",
    "OPTIMIZING",
    "CompilationScenario",
    "ExecutionReport",
    "Program",
    "VirtualMachine",
    # core tuning
    "HeuristicEvaluator",
    "InliningTuner",
    "JIKES_DEFAULT_PARAMETERS",
    "NO_INLINING",
    "InliningParameters",
    "Metric",
    "STANDARD_TASKS",
    "TABLE1_SPACE",
    "TunedHeuristic",
    "TuningTask",
    "get_task",
    # workloads
    "BenchmarkSpec",
    "SPECJVM98",
    "DACAPO_JBB",
    "get_benchmark",
    "get_suite",
]
