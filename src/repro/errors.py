"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "CompilationError",
    "SimulationError",
    "GAError",
    "TuningError",
    "CheckpointError",
    "CampaignError",
    "StoreCorruptionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied (bad range, unknown
    scenario name, inconsistent parameter spec, ...)."""


class WorkloadError(ReproError):
    """A benchmark program could not be generated or validated."""


class CompilationError(ReproError):
    """The simulated compiler was asked to do something impossible
    (compile an unknown method, apply an invalid inline plan, ...)."""


class SimulationError(ReproError):
    """The virtual machine simulation reached an inconsistent state."""


class GAError(ReproError):
    """The genetic-algorithm engine was misconfigured or failed."""


class TuningError(ReproError):
    """The inlining tuner could not complete a tuning run."""


class CheckpointError(ReproError):
    """A GA checkpoint could not be written or restored."""


class CampaignError(ReproError):
    """A multi-task campaign could not be run, persisted or resumed."""


class StoreCorruptionError(ReproError):
    """The persistent evaluation store is damaged beyond the repairs
    the loader performs automatically (torn trailing line)."""
