"""Tuning-as-a-service: the fault-tolerant campaign daemon.

``repro serve --dir STATE`` turns the one-shot campaign runner into a
persistent daemon: clients submit tuning *jobs* (a workload profile,
target architectures, compilation scenarios, optimization metrics, a GA
budget, a priority and an optional deadline) over a newline-delimited
JSON socket API; the daemon expands each job into campaign cells and
schedules them over one shared elastic worker pool with weighted-fair
scheduling, per-job quotas and admission control.

The package splits along the daemon's fault boundaries:

:mod:`repro.service.jobs`
    job specifications, schema validation at the API boundary, job and
    cell state machines;
:mod:`repro.service.journal`
    the crash-safe job journal (atomic temp-file + ``os.replace``
    rewrites) that lets a SIGKILLed daemon restart and resume;
:mod:`repro.service.scheduler`
    the shared worker pool: stride (weighted-fair) cell scheduling,
    per-job inflight quotas, retry/backoff/timeout supervision, pool
    rebuild on worker death;
:mod:`repro.service.api`
    the NDJSON-over-TCP request server and its endpoint discovery file;
:mod:`repro.service.daemon`
    the composition root: journal recovery, scheduler, API server,
    signal handling (SIGTERM drains gracefully) and service telemetry;
:mod:`repro.service.client`
    the thin blocking client used by ``repro submit`` / ``repro jobs``
    and the soak harness.

See ``docs/SERVICE.md`` for the API contract, the job lifecycle state
machine and the failure semantics.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import (
    JOB_STATES,
    JobRecord,
    JobSpec,
    ValidationFailure,
    validate_job_payload,
)
from repro.service.journal import JobJournal

__all__ = [
    "JOB_STATES",
    "JobJournal",
    "JobRecord",
    "JobSpec",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceUnavailable",
    "ValidationFailure",
    "validate_job_payload",
]
