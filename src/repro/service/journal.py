"""The crash-safe job journal.

One ``journal.json`` per service state directory records every admitted
job: its spec (the idempotency unit), its state, and per-cell outcomes
as they land.  Every mutation rewrites the file atomically (temp file,
flush, fsync, ``os.replace``) — the same durability discipline as the
campaign manifest — so a SIGKILL at any instant leaves either the
previous or the next consistent journal on disk, never a torn one.

Recovery is a pure read: :meth:`JobJournal.load` returns the records;
the daemon re-queues every non-terminal job's unfinished cells, which
resume from their GA checkpoints under the state directory.  Completed
cells keep their recorded results — a resumed job never re-simulates a
genome its crash-free twin would not.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional

from repro.service.jobs import JobRecord

__all__ = ["JobJournal"]

_FORMAT_VERSION = 1


class JobJournal:
    """Atomic, in-order ledger of the daemon's jobs.

    Thread-safe: the API thread admits jobs while the scheduler thread
    records cell completions; both funnel through one lock so the file
    on disk is always a consistent snapshot.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        self.path = os.path.join(state_dir, "journal.json")
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._next_seq = 1
        os.makedirs(state_dir, exist_ok=True)
        self._load()

    # -- persistence ---------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            return
        for entry in payload.get("jobs", []):
            try:
                record = JobRecord.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue  # one malformed entry must not sink recovery
            self._jobs[record.job_id] = record
            self._next_seq = max(self._next_seq, record.seq + 1)

    def _save_locked(self) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "jobs": [
                record.as_dict()
                for record in sorted(self._jobs.values(), key=lambda r: r.seq)
            ],
        }
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    def save(self) -> None:
        with self._lock:
            self._save_locked()

    # -- admission -----------------------------------------------------
    def next_seq(self) -> int:
        """The sequence number the next admitted job will get (the
        daemon derives stable job ids from it; callers serialize the
        peek-then-admit pair under their own admission lock)."""
        with self._lock:
            return self._next_seq

    def admit(self, record: JobRecord) -> JobRecord:
        """Journal a new job *before* it is acknowledged to the client.

        The write-ahead order is the idempotency guarantee: once the
        client sees the ack, a crashed-and-restarted daemon still knows
        the job (and a key-resubmission dedups against it) because the
        journal hit disk first.
        """
        with self._lock:
            record.seq = self._next_seq
            self._next_seq += 1
            self._jobs[record.job_id] = record
            self._save_locked()
        return record

    def by_key(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            for record in self._jobs.values():
                if record.spec.key == key:
                    return record
        return None

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: r.seq)

    def active_jobs(self) -> List[JobRecord]:
        """Jobs a recovering daemon must resume, in admission order."""
        return [record for record in self.jobs() if not record.terminal]

    # -- progress ------------------------------------------------------
    def update(self, record: JobRecord) -> None:
        """Persist a mutated record (cell done/failed, state change)."""
        with self._lock:
            self._jobs[record.job_id] = record
            self._save_locked()
