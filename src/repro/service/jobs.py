"""Job specifications and their validation at the API boundary.

A *job* is the daemon's unit of admission: one client request naming a
workload profile, the grid axes to tune (architectures, scenarios,
metrics), a GA budget, a scheduling priority and an optional deadline.
Admission expands it into campaign *cells* (one per grid point — the
same :class:`~repro.experiments.campaign.CellRequest` unit the CLI
campaign runner executes), which then compete for the shared worker
pool under weighted-fair scheduling.

Validation happens here, before anything touches the scheduler: an
unknown architecture, scenario or metric is answered with a structured
error payload (``{"code": "bad-request", "message": ...}``), never a
traceback.  :func:`validate_job_payload` is pure — it builds the
:class:`JobSpec` or raises :class:`ValidationFailure`; the API layer
turns the latter into the wire error.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch import available_machines
from repro.core.metrics import Metric
from repro.errors import ConfigurationError
from repro.ga.engine import GAConfig
from repro.jvm.scenario import get_scenario
from repro.rng import stable_hash
from repro.search.registry import DEFAULT_STRATEGY, STRATEGY_NAMES

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "ValidationFailure",
    "validate_job_payload",
]

#: the job lifecycle: queued -> running -> done | failed | cancelled
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

_VALID_SCENARIOS = ("adapt", "opt")

#: admission bounds — a submission outside these is a bad request, not
#: a scheduling decision (the scheduler never sees it)
MAX_CELLS_PER_JOB = 64
MAX_PRIORITY = 100


class ValidationFailure(Exception):
    """A rejected submission, carrying the structured wire error."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def payload(self) -> dict:
        return {"code": self.code, "message": self.message}


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines a job's cells and their results.

    The spec is the idempotency unit: resubmitting the same ``key``
    with an equal spec returns the existing job; the same key with a
    *different* spec is a conflict (the daemon refuses to guess which
    one the client meant).
    """

    key: str
    machines: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    metrics: Tuple[str, ...]
    population: int = 8
    generations: int = 4
    seed: int = 0
    workload_seed: int = 0
    priority: int = 1
    #: soft deadline in seconds from admission (None = no deadline);
    #: purely advisory bookkeeping surfaced in job status
    deadline: Optional[float] = None
    warm_start_neighbors: bool = False
    #: search strategy every cell of the job tunes with (see
    #: repro.search.registry); joins the fingerprint only when it is
    #: not the default GA so pre-strategy journals keep deduplicating
    strategy: str = DEFAULT_STRATEGY

    def ga_config(self) -> GAConfig:
        return GAConfig(
            population_size=self.population,
            generations=self.generations,
            seed=self.seed,
        )

    def cell_names(self) -> List[str]:
        """Task names of the job's grid cells, in schedule order."""
        names = []
        for machine in self.machines:
            for scenario in self.scenarios:
                for metric in self.metrics:
                    names.append(f"{scenario}:{metric}@{machine}")
        return names

    def fingerprint(self) -> str:
        """Hash of everything that determines the job's results."""
        parts = [
            ",".join(self.machines),
            ",".join(self.scenarios),
            ",".join(self.metrics),
            str(self.population),
            str(self.generations),
            str(self.seed),
            str(self.workload_seed),
            str(int(self.warm_start_neighbors)),
        ]
        if self.strategy != DEFAULT_STRATEGY:
            parts.append(f"strategy={self.strategy}")
        return f"{stable_hash('|'.join(parts)):016x}"

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["machines"] = list(self.machines)
        payload["scenarios"] = list(self.scenarios)
        payload["metrics"] = list(self.metrics)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            key=payload["key"],
            machines=tuple(payload["machines"]),
            scenarios=tuple(payload["scenarios"]),
            metrics=tuple(payload["metrics"]),
            population=int(payload.get("population", 8)),
            generations=int(payload.get("generations", 4)),
            seed=int(payload.get("seed", 0)),
            workload_seed=int(payload.get("workload_seed", 0)),
            priority=int(payload.get("priority", 1)),
            deadline=payload.get("deadline"),
            warm_start_neighbors=bool(payload.get("warm_start_neighbors", False)),
            strategy=str(payload.get("strategy", DEFAULT_STRATEGY)),
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationFailure("bad-request", message)


def _string_list(payload: dict, name: str, default: Optional[list]) -> List[str]:
    raw = payload.get(name, default)
    _require(raw is not None, f"missing required field {name!r}")
    _require(
        isinstance(raw, (list, tuple))
        and len(raw) > 0
        and all(isinstance(item, str) for item in raw),
        f"field {name!r} must be a non-empty list of strings",
    )
    return list(raw)


def _int_field(payload: dict, name: str, default: int, low: int, high: int) -> int:
    raw = payload.get(name, default)
    _require(
        isinstance(raw, int) and not isinstance(raw, bool),
        f"field {name!r} must be an integer",
    )
    _require(low <= raw <= high, f"field {name!r} must be in [{low}, {high}]")
    return raw


def validate_job_payload(payload: object) -> JobSpec:
    """Build a :class:`JobSpec` from an untrusted wire payload.

    Every defect raises :class:`ValidationFailure` with a structured
    ``bad-request`` error — unknown architectures, scenarios and
    metrics are named explicitly so the client can correct them.
    """
    _require(isinstance(payload, dict), "job must be a JSON object")
    assert isinstance(payload, dict)  # narrowed by _require

    key = payload.get("key")
    _require(
        isinstance(key, str) and 0 < len(key) <= 200,
        "field 'key' must be a non-empty string (<= 200 chars)",
    )

    machines = _string_list(payload, "machines", None)
    known_machines = available_machines()
    for machine in machines:
        _require(
            machine in known_machines,
            f"unknown machine {machine!r}; available: "
            + ", ".join(known_machines),
        )

    scenarios = _string_list(payload, "scenarios", None)
    for scenario in scenarios:
        try:
            get_scenario(scenario)
        except ConfigurationError as exc:
            raise ValidationFailure("bad-request", str(exc)) from None

    metrics = _string_list(payload, "metrics", None)
    for metric in metrics:
        try:
            Metric.parse(metric)
        except ConfigurationError as exc:
            raise ValidationFailure("bad-request", str(exc)) from None

    cells = len(machines) * len(scenarios) * len(metrics)
    _require(
        cells <= MAX_CELLS_PER_JOB,
        f"job expands to {cells} cells, over the {MAX_CELLS_PER_JOB}-cell limit",
    )

    deadline = payload.get("deadline")
    if deadline is not None:
        _require(
            isinstance(deadline, (int, float)) and not isinstance(deadline, bool)
            and deadline > 0,
            "field 'deadline' must be a positive number of seconds",
        )
        deadline = float(deadline)

    strategy = payload.get("strategy", DEFAULT_STRATEGY)
    _require(
        isinstance(strategy, str) and strategy in STRATEGY_NAMES,
        f"unknown strategy {strategy!r}; available: " + ", ".join(STRATEGY_NAMES),
    )

    return JobSpec(
        key=key,
        machines=tuple(dict.fromkeys(machines)),
        scenarios=tuple(dict.fromkeys(s.lower() for s in scenarios)),
        metrics=tuple(dict.fromkeys(m.lower() for m in metrics)),
        population=_int_field(payload, "population", 8, 2, 200),
        generations=_int_field(payload, "generations", 4, 1, 500),
        seed=_int_field(payload, "seed", 0, 0, 2**31 - 1),
        workload_seed=_int_field(payload, "workload_seed", 0, 0, 2**31 - 1),
        priority=_int_field(payload, "priority", 1, 1, MAX_PRIORITY),
        deadline=deadline,
        warm_start_neighbors=bool(payload.get("warm_start_neighbors", False)),
        strategy=strategy,
    )


@dataclass
class JobRecord:
    """One admitted job's journalled state.

    Cells progress independently; the job is ``done`` when every cell
    is, ``failed`` as soon as any cell exhausts its attempt budget
    (remaining cells still run to completion so their results are not
    wasted — see docs/SERVICE.md).
    """

    job_id: str
    spec: JobSpec
    state: str = "queued"
    #: task name -> {"state": ..., "tuned": <json dict>, "error": ...}
    cells: Dict[str, dict] = field(default_factory=dict)
    #: admission order, used for FIFO tie-breaks in the scheduler
    seq: int = 0
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.cells:
            self.cells = {
                name: {"state": "queued"} for name in self.spec.cell_names()
            }

    # -- state machine -------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def pending_cells(self) -> List[str]:
        return [
            name
            for name, cell in self.cells.items()
            if cell.get("state") not in ("done", "failed", "cancelled")
        ]

    def cancel(self) -> List[str]:
        """Move the job to ``cancelled``; returns the cells written off.

        Finished cells keep their journalled results.  Everything still
        queued (or awaiting a retry) is marked ``cancelled`` — the state
        is terminal, so :meth:`_refresh_state` never resurrects the job
        when a late in-flight cell lands afterwards.
        """
        written_off = []
        for name, cell in self.cells.items():
            if cell.get("state") not in ("done", "failed"):
                self.cells[name] = {"state": "cancelled"}
                written_off.append(name)
        self.state = "cancelled"
        return written_off

    def cell_done(self, name: str, tuned_json: dict, evaluations: int) -> None:
        self.cells[name] = {
            "state": "done",
            "tuned": tuned_json,
            "evaluations": int(evaluations),
        }
        self._refresh_state()

    def cell_failed(self, name: str, message: str) -> None:
        self.cells[name] = {"state": "failed", "error": message}
        self._refresh_state()

    def _refresh_state(self) -> None:
        if self.state in ("cancelled",):
            return
        states = {cell.get("state") for cell in self.cells.values()}
        if states <= {"done"}:
            self.state = "done"
        elif "failed" in states and states <= {"done", "failed"}:
            self.state = "failed"
            if self.error is None:
                failed = [
                    f"{name}: {cell.get('error', 'failed')}"
                    for name, cell in self.cells.items()
                    if cell.get("state") == "failed"
                ]
                self.error = "; ".join(failed)
        else:
            self.state = "running"

    # -- serialization -------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "state": self.state,
            "cells": self.cells,
            "seq": self.seq,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        record = cls(
            job_id=payload["job_id"],
            spec=JobSpec.from_dict(payload["spec"]),
            state=payload.get("state", "queued"),
            cells=dict(payload.get("cells", {})),
            seq=int(payload.get("seq", 0)),
            error=payload.get("error"),
        )
        return record

    def status_payload(self) -> dict:
        """The wire shape of ``{"op": "status"}`` responses."""
        done = sum(1 for c in self.cells.values() if c.get("state") == "done")
        return {
            "id": self.job_id,
            "key": self.spec.key,
            "state": self.state,
            "priority": self.spec.priority,
            "cells": len(self.cells),
            "cells_done": done,
            "error": self.error,
        }
