"""The daemon's request server: newline-delimited JSON over TCP.

One request is one JSON object on one line; one response is one JSON
line back.  Every response carries ``"ok"``: ``true`` with the result
fields, or ``false`` with a structured ``"error": {"code", "message"}``
— the server never writes a traceback to the wire, whatever the
handler does (defects are mapped to ``{"code": "internal"}``).

The server binds loopback on an ephemeral port and publishes its
address in ``<state>/endpoint.json`` (written atomically), which is how
``repro submit``/``repro jobs`` and :class:`repro.service.ServiceClient`
discover a running daemon.  The file is removed on graceful shutdown;
a stale file left by a SIGKILLed daemon is detected by the client's
connection failure and carries the dead daemon's pid for diagnosis.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
from typing import Callable, Optional, Tuple

__all__ = ["ApiServer", "error_payload", "read_endpoint", "ENDPOINT_FILE"]

ENDPOINT_FILE = "endpoint.json"

#: wire error codes (documented in docs/SERVICE.md)
CODE_BAD_REQUEST = "bad-request"
CODE_KEY_CONFLICT = "key-conflict"
CODE_QUEUE_FULL = "queue-full"
CODE_DRAINING = "draining"
CODE_NOT_FOUND = "not-found"
CODE_INTERNAL = "internal"


def error_payload(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


def read_endpoint(state_dir: str) -> Optional[dict]:
    """The published endpoint of *state_dir*'s daemon, if any."""
    try:
        with open(
            os.path.join(state_dir, ENDPOINT_FILE), "r", encoding="utf-8"
        ) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        dispatch = self.server.dispatch  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                response = error_payload(
                    CODE_BAD_REQUEST, f"invalid JSON: {exc}"
                )
            else:
                try:
                    response = dispatch(payload)
                except Exception as exc:
                    # the structured-error guarantee: a handler defect
                    # reaches the client as a payload, not a traceback
                    response = error_payload(
                        CODE_INTERNAL, f"{type(exc).__name__}: {exc}"
                    )
            try:
                self.wfile.write(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ApiServer:
    """The NDJSON request server plus its endpoint discovery file."""

    def __init__(
        self,
        state_dir: str,
        dispatch: Callable[[dict], dict],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state_dir = state_dir
        self._server = _Server((host, port), _Handler)
        self._server.dispatch = dispatch  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint_path(self) -> str:
        return os.path.join(self.state_dir, ENDPOINT_FILE)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service-api",
            daemon=True,
        )
        self._thread.start()
        self._publish_endpoint()

    def _publish_endpoint(self) -> None:
        host, port = self.address
        payload = {"host": host, "port": port, "pid": os.getpid()}
        tmp_path = f"{self.endpoint_path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.endpoint_path)

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        try:
            os.remove(self.endpoint_path)
        except OSError:
            pass
