"""The service daemon: journal recovery, API, scheduler, signals.

:class:`ServiceDaemon` composes the pieces into the process behind
``repro serve --dir STATE``:

* on start it loads the state directory's journal and *re-queues every
  non-terminal job* — their finished cells keep their journalled
  results, their interrupted cells resume from GA checkpoints, so a
  SIGKILLed daemon restarted against the same directory completes its
  jobs bitwise-identically to a crash-free run;
* the API thread admits jobs under **admission control**: schema
  validation first (structured ``bad-request``, never a traceback),
  then idempotency by client job key (equal spec → the existing job is
  returned; different spec → ``key-conflict``), then the bounded active
  queue (``queue-full`` is explicit backpressure, the client decides
  whether to retry);
* SIGTERM drains gracefully: admission stops (``draining`` rejects),
  in-flight cells finish and journal, the store tier compacts, the
  telemetry session exports, the endpoint file is removed, exit 0.

Telemetry: job lifecycle events (``service.*``) and the
``repro_service_*`` metric families (queue depth and inflight gauges,
jobs/rejects/retries/pool-rebuild counters) — bitwise-neutral, like
every other telemetry source.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Dict, Optional

from repro.resilience import RetryPolicy
from repro.resilience.faults import (
    SITE_JOB_ADMIT,
    SITE_JOURNAL_IO,
    get_fault_injector,
)
from repro.service.api import (
    CODE_BAD_REQUEST,
    CODE_DRAINING,
    CODE_KEY_CONFLICT,
    CODE_NOT_FOUND,
    CODE_QUEUE_FULL,
    ApiServer,
    error_payload,
)
from repro.service.jobs import JobRecord, ValidationFailure, validate_job_payload
from repro.service.journal import JobJournal
from repro.service.scheduler import CellScheduler
from repro.telemetry import (
    configure as telemetry_configure,
    get_session as telemetry_get_session,
    shutdown as telemetry_shutdown,
)

__all__ = ["ServiceDaemon"]


class ServiceDaemon:
    """One running campaign-tuning service bound to a state directory."""

    def __init__(
        self,
        state_dir: str,
        workers: int = 2,
        queue_limit: int = 64,
        quota: int = 2,
        policy: Optional[RetryPolicy] = None,
        telemetry_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state_dir = state_dir
        self.queue_limit = max(1, queue_limit)
        self.telemetry_dir = telemetry_dir
        os.makedirs(state_dir, exist_ok=True)
        self.journal = JobJournal(state_dir)
        self.scheduler = CellScheduler(
            state_dir,
            self.journal,
            workers=workers,
            policy=policy,
            quota=quota,
            events=self._on_scheduler_event,
        )
        self.api = ApiServer(state_dir, self._dispatch, host=host, port=port)
        self._admission_lock = threading.Lock()
        self._draining = False
        self._stop_event = threading.Event()
        self._stopped = False
        #: in-memory admission clocks for advisory deadline reporting
        #: (reset on restart — deadlines are bookkeeping, not scheduling)
        self._admitted_at: Dict[str, float] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self.telemetry_dir is not None:
            telemetry_configure(self.telemetry_dir)
        self.scheduler.start()
        recovered = self.journal.active_jobs()
        for record in recovered:
            self.scheduler.submit(record)
        self.api.start()
        self._session_emit("service.start", workers=self.scheduler.workers)
        self._touch_gauges()
        registry = self._registry()
        if registry is not None:
            # materialize every service family up front so even an
            # idle daemon's export satisfies the telemetry smoke check
            for status in ("done", "failed", "cancelled"):
                registry.counter(
                    "repro_service_jobs_total", status=status
                ).inc(0)
            registry.counter("repro_service_cells_total", status="done").inc(0)
            registry.counter(
                "repro_service_rejects_total", code=CODE_QUEUE_FULL
            ).inc(0)
            registry.counter("repro_service_retries_total").inc(0)
            registry.counter("repro_service_pool_rebuilds_total").inc(0)

    def serve_forever(self) -> None:
        """Run until SIGTERM/SIGINT, then drain and shut down."""

        def _request_stop(signum, frame) -> None:
            self._stop_event.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
        while not self._stop_event.wait(timeout=0.2):
            pass
        self.stop()

    def stop(self) -> None:
        """Graceful drain: finish in-flight work, persist, tear down."""
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        self._session_emit(
            "service.drain", inflight=self.scheduler.inflight_count()
        )
        self.scheduler.stop()
        self.api.stop()
        self.scheduler.compact_store()
        session = telemetry_get_session()
        if session is not None:
            session.export_prometheus()
        if self.telemetry_dir is not None:
            telemetry_shutdown()

    # -- telemetry -----------------------------------------------------
    def _registry(self):
        session = telemetry_get_session()
        return session.registry if session is not None else None

    def _session_emit(self, event: str, **fields) -> None:
        session = telemetry_get_session()
        if session is not None:
            session.emit(event, **fields)

    def _touch_gauges(self) -> None:
        registry = self._registry()
        if registry is None:
            return
        registry.gauge("repro_service_queue_depth").set(
            self.scheduler.queue_depth()
        )
        registry.gauge("repro_service_inflight").set(
            self.scheduler.inflight_count()
        )

    def _on_scheduler_event(self, kind: str, **fields) -> None:
        registry = self._registry()
        if kind in ("cell_done", "cell_failed"):
            self._session_emit(
                "service.cell_done",
                job=fields.get("job_id", ""),
                cell=fields.get("cell", ""),
                ok=kind == "cell_done",
            )
            if registry is not None:
                status = "done" if kind == "cell_done" else "failed"
                registry.counter(
                    "repro_service_cells_total", status=status
                ).inc()
        elif kind == "job_cancelled":
            self._session_emit(
                "service.job_cancelled",
                job=fields.get("job_id", ""),
                key=fields.get("key", ""),
            )
            if registry is not None:
                registry.counter(
                    "repro_service_jobs_total", status="cancelled"
                ).inc()
            self._admitted_at.pop(fields.get("job_id", ""), None)
        elif kind in ("job_done", "job_failed"):
            self._session_emit(
                "service.job_done",
                job=fields.get("job_id", ""),
                key=fields.get("key", ""),
                state=fields.get("state", ""),
            )
            if registry is not None:
                registry.counter(
                    "repro_service_jobs_total", status=fields.get("state", "")
                ).inc()
            self._admitted_at.pop(fields.get("job_id", ""), None)
        elif kind == "retry":
            if registry is not None:
                registry.counter("repro_service_retries_total").inc()
        elif kind == "pool_rebuild":
            if registry is not None:
                registry.counter("repro_service_pool_rebuilds_total").inc()
        self._touch_gauges()

    # -- request dispatch ----------------------------------------------
    def _dispatch(self, payload: dict) -> dict:
        if not isinstance(payload, dict):
            return error_payload(CODE_BAD_REQUEST, "request must be an object")
        op = payload.get("op")
        handler = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "status": self._op_status,
            "result": self._op_result,
            "cancel": self._op_cancel,
            "jobs": self._op_jobs,
            "stats": self._op_stats,
            "drain": self._op_drain,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            return error_payload(CODE_BAD_REQUEST, f"unknown op {op!r}")
        return handler(payload)

    def _op_ping(self, payload: dict) -> dict:
        return {"ok": True, "pid": os.getpid(), "draining": self._draining}

    def _op_submit(self, payload: dict) -> dict:
        try:
            spec = validate_job_payload(payload.get("job"))
        except ValidationFailure as exc:
            self._count_reject(exc.code)
            return {"ok": False, "error": exc.payload()}
        if self._draining:
            self._count_reject(CODE_DRAINING)
            return error_payload(
                CODE_DRAINING, "daemon is draining; not admitting jobs"
            )
        injector = get_fault_injector()
        if injector is not None:
            # job-level fault site: an admission crash after validation
            # must reach the client as a structured internal error, and
            # a retry of the same key must succeed
            injector.maybe_raise(SITE_JOB_ADMIT, key=spec.key)
        with self._admission_lock:
            existing = self.journal.by_key(spec.key)
            if existing is not None:
                if existing.spec.fingerprint() == spec.fingerprint():
                    return {
                        "ok": True,
                        "id": existing.job_id,
                        "state": existing.state,
                        "deduplicated": True,
                    }
                self._count_reject(CODE_KEY_CONFLICT)
                return error_payload(
                    CODE_KEY_CONFLICT,
                    f"job key {spec.key!r} was already submitted with a "
                    "different specification",
                )
            active = len(self.journal.active_jobs())
            if active >= self.queue_limit:
                self._count_reject(CODE_QUEUE_FULL)
                return error_payload(
                    CODE_QUEUE_FULL,
                    f"admission queue is full ({active}/{self.queue_limit} "
                    "active jobs); retry after some finish",
                )
            if injector is not None:
                injector.maybe_raise(SITE_JOURNAL_IO, key=spec.key)
            record = JobRecord(job_id=f"job-{self.journal.next_seq():06d}", spec=spec)
            self.journal.admit(record)
        self._admitted_at[record.job_id] = time.monotonic()
        self.scheduler.submit(record)
        self._session_emit(
            "service.job_submitted",
            job=record.job_id,
            key=spec.key,
            cells=len(record.cells),
            deduplicated=False,
        )
        self._touch_gauges()
        return {
            "ok": True,
            "id": record.job_id,
            "state": record.state,
            "deduplicated": False,
        }

    def _count_reject(self, code: str) -> None:
        self._session_emit("service.job_rejected", code=code)
        registry = self._registry()
        if registry is not None:
            registry.counter("repro_service_rejects_total", code=code).inc()

    def _find(self, payload: dict) -> Optional[JobRecord]:
        job_id = payload.get("id")
        if job_id is not None:
            return self.journal.get(str(job_id))
        key = payload.get("key")
        if key is not None:
            return self.journal.by_key(str(key))
        return None

    def _status_with_deadline(self, record: JobRecord) -> dict:
        status = record.status_payload()
        status["deadline"] = record.spec.deadline
        exceeded = False
        if record.spec.deadline is not None:
            admitted = self._admitted_at.get(record.job_id)
            if admitted is not None:
                exceeded = time.monotonic() - admitted > record.spec.deadline
        status["deadline_exceeded"] = exceeded
        return status

    def _op_status(self, payload: dict) -> dict:
        record = self._find(payload)
        if record is None:
            return error_payload(CODE_NOT_FOUND, "no such job")
        return {"ok": True, "job": self._status_with_deadline(record)}

    def _op_result(self, payload: dict) -> dict:
        record = self._find(payload)
        if record is None:
            return error_payload(CODE_NOT_FOUND, "no such job")
        return {
            "ok": True,
            "job": self._status_with_deadline(record),
            "cells": record.cells,
        }

    def _op_cancel(self, payload: dict) -> dict:
        """Cancel a job by id or key.

        Queued jobs settle immediately; a running job's in-flight cells
        drain and are written off at the next cell boundary (the worker
        pool is never torn down for a cancellation).  Cancelling a job
        that is already terminal is a no-op acknowledged with its state.
        """
        record = self._find(payload)
        if record is None:
            return error_payload(CODE_NOT_FOUND, "no such job")
        if record.terminal:
            return {
                "ok": True,
                "id": record.job_id,
                "state": record.state,
                "cancelled": False,
            }
        accepted = self.scheduler.cancel(record.job_id)
        if not accepted:
            # not active in the scheduler (e.g. a drained daemon holds
            # it queued in the journal only): journal the cancel here
            record.cancel()
            self.journal.update(record)
            self._session_emit(
                "service.job_cancelled", job=record.job_id, key=record.spec.key
            )
            registry = self._registry()
            if registry is not None:
                registry.counter(
                    "repro_service_jobs_total", status="cancelled"
                ).inc()
        self._touch_gauges()
        return {
            "ok": True,
            "id": record.job_id,
            "state": record.state,
            "cancelled": True,
        }

    def _op_jobs(self, payload: dict) -> dict:
        return {
            "ok": True,
            "jobs": [
                self._status_with_deadline(record)
                for record in self.journal.jobs()
            ],
        }

    def _op_stats(self, payload: dict) -> dict:
        return {
            "ok": True,
            "queue_depth": self.scheduler.queue_depth(),
            "inflight": self.scheduler.inflight_count(),
            "active_jobs": self.scheduler.active_jobs(),
            "jobs_total": len(self.journal.jobs()),
            "draining": self._draining,
        }

    def _op_drain(self, payload: dict) -> dict:
        self._draining = True
        self.scheduler.drain()
        return {"ok": True, "draining": True}

    def _op_shutdown(self, payload: dict) -> dict:
        # ack first; the actual stop happens off the request thread so
        # the client gets its response before the server goes away
        self._stop_event.set()
        threading.Thread(target=self.stop, daemon=True).start()
        return {"ok": True, "stopping": True}
