"""The daemon's shared worker pool and weighted-fair cell scheduler.

All admitted jobs compete for ONE process pool.  Each job's grid cells
enter a per-job queue; the scheduler picks the next cell to dispatch by
*stride scheduling*: every job carries a ``pass`` value advanced by
``1 / priority`` per dispatched cell, and the runnable job with the
smallest pass (FIFO admission order breaking ties) goes next.  A
priority-10 job therefore receives ten dispatch opportunities for every
one a priority-1 job gets — weighted fairness, not starvation: every
job's pass eventually becomes the smallest.

A per-job *inflight quota* keeps one wide job from occupying every
worker even when its pass says it is next — capacity left by the quota
flows to other jobs.

Supervision mirrors :mod:`repro.resilience.supervisor` (same retry
policy, clock discipline and failure taxonomy), continuously over a
dynamic job set instead of one batch:

* a cell raising retries with capped backoff until its attempt budget
  is spent, then fails (the job fails once every cell settled);
* ``BrokenProcessPool`` charges the in-flight cells a worker-death
  attempt, rebuilds the pool, and resubmits — unrelated jobs just keep
  going;
* a cell over the policy timeout is written off and the pool rebuilt
  (a running future cannot be cancelled); healthy in-flight cells are
  not charged an attempt.

Results are journalled the moment they land (see
:mod:`repro.service.journal`), and every cell checkpoints its GA state
under the state directory, so a SIGKILLed daemon resumes mid-cell on
restart, bitwise-identically to a crash-free run.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch import get_machine
from repro.core.metrics import Metric
from repro.core.tuner import TuningTask
from repro.experiments.campaign import CellRequest, execute_cell
from repro.jvm.scenario import get_scenario
from repro.resilience import RetryPolicy, checkpoint_path_for
from repro.resilience.supervisor import (
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    KIND_WORKER_DEATH,
    FailureReport,
)
from repro.service.jobs import JobRecord
from repro.service.journal import JobJournal

__all__ = ["CellScheduler"]


@dataclass
class _CellState:
    """One unfinished grid cell of one admitted job."""

    job_id: str
    name: str
    machine: str
    scenario: str
    metric: str
    attempts: int = 0
    ready_at: float = 0.0
    slept: float = 0.0
    inflight: bool = False
    settled: bool = False


@dataclass
class _JobState:
    record: JobRecord
    cells: List[_CellState] = field(default_factory=list)
    #: stride-scheduling pass value; smallest runnable pass runs next
    pass_value: float = 0.0
    inflight: int = 0
    #: set by CellScheduler.cancel; in-flight cells drain but their
    #: results are written off instead of journalled
    cancelled: bool = False

    @property
    def stride(self) -> float:
        return 1.0 / max(1, self.record.spec.priority)

    def unsettled(self) -> List[_CellState]:
        return [cell for cell in self.cells if not cell.settled]


@dataclass
class _InFlight:
    job: _JobState
    cell: _CellState
    started: float
    timed_out: bool = False


def _cells_for(record: JobRecord) -> List[_CellState]:
    """Cell states for a job's *unfinished* cells, in schedule order.

    Cells already journalled done (a recovered job) are skipped — their
    results stand; cells journalled failed are re-queued with a fresh
    attempt budget (the operator restarted the daemon on purpose).
    """
    spec = record.spec
    cells: List[_CellState] = []
    for machine in spec.machines:
        for scenario in spec.scenarios:
            for metric in spec.metrics:
                name = f"{scenario}:{metric}@{machine}"
                journalled = record.cells.get(name, {})
                if journalled.get("state") == "done":
                    continue
                cells.append(
                    _CellState(
                        job_id=record.job_id,
                        name=name,
                        machine=machine,
                        scenario=scenario,
                        metric=metric,
                    )
                )
    return cells


class CellScheduler:
    """Continuous supervised execution of every admitted job's cells.

    One background thread owns the pool and all scheduling decisions;
    :meth:`submit` is the only cross-thread entry point (called by the
    API thread under the internal condition variable).

    *events* (optional callable ``events(kind, **fields)``) receives
    the scheduler's lifecycle stream — ``cell_done``, ``cell_failed``,
    ``cell_written_off``, ``job_done``, ``job_failed``,
    ``job_cancelled``, ``retry``, ``pool_rebuild`` — which
    the daemon mirrors into telemetry.  Event-handler exceptions are
    swallowed: observability must never take the scheduler down.
    """

    def __init__(
        self,
        state_dir: str,
        journal: JobJournal,
        workers: int = 2,
        policy: Optional[RetryPolicy] = None,
        quota: int = 2,
        poll_interval: float = 0.05,
        mp_context=None,
        events: Optional[Callable] = None,
    ) -> None:
        self.state_dir = state_dir
        self.journal = journal
        self.workers = max(1, workers)
        self.policy = policy or RetryPolicy()
        self.quota = max(1, quota)
        self.poll_interval = poll_interval
        self.mp_context = mp_context
        self._events = events

        self.store_path = os.path.join(state_dir, "tier")
        os.makedirs(self.store_path, exist_ok=True)

        self._cond = threading.Condition()
        self._jobs: Dict[str, _JobState] = {}
        self._inflight: Dict[Future, _InFlight] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None
        self._draining = False
        self._stopping = False
        self.failures: List[FailureReport] = []

        # campaign-scope optimizations, shared across every job the
        # daemon runs; each degrades to nothing on any failure
        self._archives: Dict[int, object] = {}
        self._plan_publisher = None

        # shm hygiene: published segment names are registered in a
        # state-dir sidecar so a restart can unlink what a SIGKILLed
        # predecessor could not (graceful shutdown clears the file)
        self._shm_registry_path = os.path.join(state_dir, "shm.json")
        self._sweep_stale_segments()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        try:
            from repro.perf import planshare

            if planshare.plan_sharing_enabled():
                self._plan_publisher = planshare.PlanSharePublisher(
                    persist_dir=os.path.join(self.store_path, "plans")
                )
        except Exception:
            self._plan_publisher = None
        self._record_segments()
        self._thread = threading.Thread(
            target=self._run, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def drain(self) -> None:
        """Stop dispatching new cells; in-flight attempts run out.

        Cells never dispatched stay queued in the journal — the next
        daemon start against the same state directory resumes them.
        """
        with self._cond:
            self._draining = True
            self._cond.notify()

    def stop(self, wait_seconds: Optional[float] = 30.0) -> None:
        """Drain, wait for in-flight work, then tear the pool down."""
        self.drain()
        deadline = (
            time.monotonic() + wait_seconds if wait_seconds is not None else None
        )
        while True:
            with self._cond:
                if not self._inflight:
                    break
            if deadline is not None and time.monotonic() > deadline:
                break
            time.sleep(self.poll_interval)
        with self._cond:
            self._stopping = True
            self._cond.notify()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._release_shared()

    def _release_shared(self) -> None:
        for archive in self._archives.values():
            try:
                archive.unlink()
            except Exception:
                pass
        self._archives.clear()
        if self._plan_publisher is not None:
            try:
                self._plan_publisher.unlink()
            except Exception:
                pass
            self._plan_publisher = None
        try:
            os.remove(self._shm_registry_path)
        except OSError:
            pass

    # -- admission (API thread) ----------------------------------------
    def submit(self, record: JobRecord) -> None:
        """Enqueue an admitted (already journalled) job's cells."""
        job = _JobState(record=record, cells=_cells_for(record))
        with self._cond:
            # a late arrival starts at the current minimum pass so it
            # cannot retroactively claim dispatches it "missed"
            running = [j.pass_value for j in self._jobs.values() if j.unsettled()]
            job.pass_value = min(running, default=0.0)
            self._jobs[record.job_id] = job
            if not job.cells:
                # every cell was already journalled done (recovery of a
                # job that crashed after its last cell landed)
                self._finalize_job(job)
            self._cond.notify()

    # -- cancellation (API thread) -------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel one active job; returns False when it is not active.

        Queued cells (and cells waiting out a retry backoff) settle
        immediately and the ``cancelled`` state is journalled before
        this returns.  In-flight cells are *not* interrupted — a running
        future cannot be cancelled without tearing down the pool under
        every other job — they finish their current attempt and the
        result is written off at the cell boundary in :meth:`_consume`.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return False
            job.cancelled = True
            for cell in job.cells:
                if not cell.settled and not cell.inflight:
                    cell.settled = True
            job.record.cancel()
            self.journal.update(job.record)
            inflight = job.inflight
            self._cond.notify()
        if inflight == 0:
            self._finalize_job(job)
        return True

    # -- introspection (API thread) ------------------------------------
    def queue_depth(self) -> int:
        with self._cond:
            return sum(
                1
                for job in self._jobs.values()
                for cell in job.unsettled()
                if not cell.inflight
            )

    def inflight_count(self) -> int:
        with self._cond:
            return len(self._inflight)

    def active_jobs(self) -> int:
        with self._cond:
            return sum(1 for job in self._jobs.values() if job.unsettled())

    # -- events --------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        if self._events is None:
            return
        try:
            self._events(kind, **fields)
        except Exception:
            pass

    # -- shared resources ----------------------------------------------
    def _archive_for(self, workload_seed: int):
        archive = self._archives.get(workload_seed)
        if archive is not None or workload_seed in self._archives:
            return archive
        try:
            from repro.perf.shm import WorkloadArchive
            from repro.workloads.suites import SPECJVM98

            archive = WorkloadArchive.publish(
                SPECJVM98.programs(seed=workload_seed)
            )
        except Exception:
            archive = None
        self._archives[workload_seed] = archive
        if archive is not None:
            self._record_segments()
        return archive

    def _sweep_stale_segments(self) -> None:
        """Unlink shm segments a SIGKILLed predecessor left behind.

        Graceful shutdown unlinks every published segment and removes
        the registry file, so names still listed at startup belong to a
        daemon that died without cleanup.  Missing segments and
        platforms without shared memory are both fine — the sweep is
        pure hygiene.
        """
        try:
            with open(self._shm_registry_path, "r", encoding="utf-8") as handle:
                names = json.load(handle).get("segments", [])
        except (OSError, ValueError):
            names = []
        for name in names:
            if not isinstance(name, str) or not name:
                continue
            try:
                from multiprocessing import shared_memory

                try:
                    segment = shared_memory.SharedMemory(name=name, track=False)
                except TypeError:  # pragma: no cover - pre-3.13
                    segment = shared_memory.SharedMemory(name=name)
                segment.unlink()
                segment.close()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        try:
            os.remove(self._shm_registry_path)
        except OSError:
            pass

    def _record_segments(self) -> None:
        """Snapshot the published segment names into the registry file."""
        names = []
        for archive in self._archives.values():
            if archive is None:
                continue
            try:
                names.append(archive.name)
            except Exception:
                pass
        publisher = self._plan_publisher
        if publisher is not None and not getattr(publisher, "dead", False):
            try:
                base = publisher.base
                names.append(base)
                epoch = int(publisher.archive.epoch)
                if epoch:
                    names.append(f"{base}-e{epoch}")
            except Exception:
                pass
        tmp = self._shm_registry_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"segments": names}, handle)
            os.replace(tmp, self._shm_registry_path)
        except OSError:
            pass

    def _verify_archives(self) -> None:
        """After a pool rebuild: republish any unlinked archive segment
        under its original name (in-flight requests carry the name)."""
        try:
            from repro.perf.shm import SharedArraySegment, WorkloadArchive
            from repro.workloads.suites import SPECJVM98
        except Exception:
            return
        for seed, archive in list(self._archives.items()):
            if archive is None:
                continue
            try:
                probe = SharedArraySegment.attach(archive.name, readonly=True)
                probe.close()
            except FileNotFoundError:
                try:
                    stale_name = archive.name
                    archive.close()
                    self._archives[seed] = WorkloadArchive.publish(
                        SPECJVM98.programs(seed=seed), name=stale_name
                    )
                except Exception:
                    self._archives[seed] = None
            except Exception:
                pass

    def _request_for(self, job: _JobState, cell: _CellState) -> CellRequest:
        spec = job.record.spec
        job_dir = os.path.join(self.state_dir, "jobs", job.record.job_id)
        os.makedirs(os.path.join(job_dir, "checkpoints"), exist_ok=True)
        archive = self._archive_for(spec.workload_seed)
        return CellRequest(
            task=TuningTask(
                name=cell.name,
                scenario=get_scenario(cell.scenario),
                machine=get_machine(cell.machine),
                metric=Metric.parse(cell.metric),
                seed=spec.seed,
            ),
            ga_config=spec.ga_config(),
            store_path=self.store_path,
            workload_seed=spec.workload_seed,
            checkpoint_path=checkpoint_path_for(job_dir, cell.name),
            archive_name=archive.name if archive is not None else None,
            plan_base=(
                self._plan_publisher.base
                if self._plan_publisher is not None
                else None
            ),
            warm_start_neighbors=spec.warm_start_neighbors,
            strategy=spec.strategy,
        )

    # -- the scheduling loop -------------------------------------------
    def _pick_next(self, now: float) -> Optional[Tuple[_JobState, _CellState]]:
        """The stride-scheduling dispatch decision (under the lock)."""
        best: Optional[Tuple[_JobState, _CellState]] = None
        best_rank: Optional[Tuple[float, int]] = None
        for job in self._jobs.values():
            if job.inflight >= self.quota:
                continue
            cell = next(
                (
                    c
                    for c in job.cells
                    if not c.settled and not c.inflight and c.ready_at <= now
                ),
                None,
            )
            if cell is None:
                continue
            rank = (job.pass_value, job.record.seq)
            if best_rank is None or rank < best_rank:
                best, best_rank = (job, cell), rank
        return best

    def _run(self) -> None:
        try:
            self._loop()
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _loop(self) -> None:
        while True:
            with self._cond:
                if self._stopping:
                    return
                submit_broken = self._dispatch_ready()
                futures = list(self._inflight)
            if submit_broken:
                self._handle_pool_broken("broken-at-submit")
                continue
            if not futures:
                with self._cond:
                    if self._stopping:
                        return
                    self._cond.wait(timeout=self.poll_interval)
                continue
            done, _ = wait(
                futures, timeout=self.poll_interval, return_when=FIRST_COMPLETED
            )
            pool_broken = False
            for future in done:
                pool_broken |= self._consume(future)
            if pool_broken:
                self._handle_pool_broken("worker-death")
                continue
            self._check_timeouts()

    def _dispatch_ready(self) -> bool:
        """Fill free pool slots by stride order.  Lock held.  Returns
        True when the pool broke at submission."""
        if self._draining:
            return False
        now = time.monotonic()
        while len(self._inflight) < self.workers:
            picked = self._pick_next(now)
            if picked is None:
                break
            job, cell = picked
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self.mp_context
                )
            request = self._request_for(job, cell)
            cell.attempts += 1
            try:
                future = self._pool.submit(execute_cell, request)
            except BrokenProcessPool:
                self._fail_attempt(
                    job, cell, KIND_WORKER_DEATH, "BrokenProcessPool",
                    "pool was broken at submission", 0.0,
                )
                return True
            cell.inflight = True
            job.inflight += 1
            job.pass_value += job.stride
            self._inflight[future] = _InFlight(
                job=job, cell=cell, started=time.monotonic()
            )
        return False

    def _consume(self, future: Future) -> bool:
        """Handle one completed future.  Returns True on pool breakage."""
        with self._cond:
            entry = self._inflight.pop(future, None)
        if entry is None:
            return False
        job, cell = entry.job, entry.cell
        elapsed = time.monotonic() - entry.started
        with self._cond:
            cell.inflight = False
            job.inflight -= 1
        try:
            outcome = future.result()
        except BrokenProcessPool:
            with self._cond:
                self._fail_attempt(
                    job, cell, KIND_WORKER_DEATH, "BrokenProcessPool",
                    "a worker process died while the cell was in flight",
                    elapsed,
                )
            return True
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            with self._cond:
                self._fail_attempt(
                    job, cell, KIND_EXCEPTION, type(exc).__name__, str(exc),
                    elapsed,
                )
            return False
        if entry.timed_out:
            return False  # already written off by the timeout path
        self._record_success(job, cell, outcome)
        return False

    def _write_off(self, job: _JobState, cell: _CellState) -> None:
        """Discard a drained in-flight cell of a cancelled job.  Lock
        held by the caller.  The record's cells were already marked
        cancelled by :meth:`cancel`; once the last in-flight cell drains
        the job leaves the active set."""
        if cell.settled:
            return  # cancel() already settled it (and finalized if last)
        cell.settled = True
        self._emit(
            "cell_written_off", job_id=job.record.job_id, cell=cell.name
        )
        if job.inflight == 0 and not job.unsettled():
            self._finalize_job(job)

    def _record_success(self, job: _JobState, cell: _CellState, outcome) -> None:
        with self._cond:
            if job.cancelled:
                self._write_off(job, cell)
                return
        if self._plan_publisher is not None and outcome.plan_exports:
            try:
                self._plan_publisher.merge(outcome.plan_exports)
                if self._plan_publisher.publish_if_dirty() is not None:
                    self._record_segments()
            except Exception:
                pass
        record = job.record
        record.cell_done(
            cell.name,
            json.loads(outcome.tuned.to_json()),
            outcome.tuned.evaluations,
        )
        self.journal.update(record)
        with self._cond:
            cell.settled = True
        self._emit(
            "cell_done",
            job_id=record.job_id,
            cell=cell.name,
            evaluations=outcome.tuned.evaluations,
            appended=outcome.appended,
        )
        if record.terminal:
            self._finalize_job(job)

    def _fail_attempt(
        self,
        job: _JobState,
        cell: _CellState,
        kind: str,
        error: str,
        message: str,
        elapsed: float,
    ) -> None:
        """Account one failed attempt.  Lock held by the caller."""
        if job.cancelled:
            # the attempt no longer matters — the job was cancelled
            # while this cell was in flight; write it off instead of
            # charging/retrying it
            self._write_off(job, cell)
            return
        task_key = f"{job.record.job_id}/{cell.name}"
        fatal = cell.attempts >= self.policy.max_attempts
        report = FailureReport(
            task_name=task_key,
            attempt=cell.attempts,
            kind=kind,
            error_type=error,
            message=message,
            elapsed=elapsed,
            fatal=fatal,
        )
        self.failures.append(report)
        if fatal:
            cell.settled = True
            record = job.record
            record.cell_failed(cell.name, str(report))
            self.journal.update(record)
            self._emit(
                "cell_failed",
                job_id=record.job_id,
                cell=cell.name,
                failure=kind,
            )
            if record.terminal:
                self._finalize_job(job)
        else:
            delay = self.policy.delay_before(
                task_key, cell.attempts + 1, slept=cell.slept
            )
            cell.slept += delay
            cell.ready_at = time.monotonic() + delay
            self._emit(
                "retry",
                job_id=job.record.job_id,
                cell=cell.name,
                attempt=cell.attempts,
                failure=kind,
            )

    def _finalize_job(self, job: _JobState) -> None:
        record = job.record
        with self._cond:
            self._jobs.pop(record.job_id, None)
        kind = {
            "done": "job_done",
            "cancelled": "job_cancelled",
        }.get(record.state, "job_failed")
        self._emit(
            kind,
            job_id=record.job_id,
            key=record.spec.key,
            state=record.state,
        )

    def _handle_pool_broken(self, reason: str) -> None:
        with self._cond:
            for future, entry in list(self._inflight.items()):
                entry.cell.inflight = False
                entry.job.inflight -= 1
                self._fail_attempt(
                    entry.job,
                    entry.cell,
                    KIND_WORKER_DEATH,
                    "BrokenProcessPool",
                    "pool broke while the cell was in flight",
                    time.monotonic() - entry.started,
                )
            self._inflight.clear()
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
        self._emit("pool_rebuild", reason=reason)
        self._verify_archives()

    def _check_timeouts(self) -> None:
        if self.policy.timeout is None:
            return
        now = time.monotonic()
        with self._cond:
            stuck = [
                entry
                for entry in self._inflight.values()
                if not entry.timed_out and now - entry.started > self.policy.timeout
            ]
            if not stuck:
                return
            for entry in stuck:
                entry.timed_out = True
                entry.cell.inflight = False
                entry.job.inflight -= 1
                self._fail_attempt(
                    entry.job,
                    entry.cell,
                    KIND_TIMEOUT,
                    "TimeoutError",
                    f"cell exceeded the {self.policy.timeout:.1f}s budget",
                    now - entry.started,
                )
            # a running future cannot be cancelled: tear the pool down
            # to reclaim the stuck workers.  Healthy in-flight cells are
            # NOT charged an attempt — they resubmit on the new pool.
            for entry in self._inflight.values():
                if not entry.timed_out:
                    entry.cell.attempts -= 1
                    entry.cell.inflight = False
                    entry.job.inflight -= 1
            self._inflight.clear()
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
        self._emit("pool_rebuild", reason="timeout")
        self._verify_archives()

    # -- maintenance ---------------------------------------------------
    def compact_store(self) -> Optional[dict]:
        """Fold the tier's cooled shards into an indexed pack
        (best-effort; called by the daemon on graceful shutdown)."""
        try:
            from repro.perf.storetier import StoreTier

            return StoreTier(self.store_path).compact()
        except Exception:
            return None
