"""Blocking client for the service daemon's NDJSON API.

One connection per request keeps the client trivially robust against
daemon restarts: every call re-reads ``endpoint.json`` (a restarted
daemon publishes a fresh port there), connects, writes one line, reads
one line.  A daemon that cannot be reached raises
:class:`ServiceUnavailable` — the only transport-level error surface;
everything else is the structured response payload.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Optional

from repro.service.api import read_endpoint

__all__ = ["ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(Exception):
    """No daemon is reachable for the state directory."""


class ServiceClient:
    """Thin request/response client bound to one state directory."""

    def __init__(self, state_dir: str, connect_timeout: float = 5.0) -> None:
        self.state_dir = state_dir
        self.connect_timeout = connect_timeout

    # -- transport -----------------------------------------------------
    def request(self, payload: dict) -> dict:
        endpoint = read_endpoint(self.state_dir)
        if endpoint is None:
            raise ServiceUnavailable(
                f"no daemon endpoint published in {self.state_dir!r} "
                "(is `repro serve` running?)"
            )
        try:
            with socket.create_connection(
                (endpoint["host"], int(endpoint["port"])),
                timeout=self.connect_timeout,
            ) as conn:
                conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))
                with conn.makefile("r", encoding="utf-8") as reader:
                    line = reader.readline()
        except OSError as exc:
            raise ServiceUnavailable(
                f"daemon at {endpoint.get('host')}:{endpoint.get('port')} "
                f"(pid {endpoint.get('pid')}) is unreachable: {exc}"
            ) from exc
        if not line:
            raise ServiceUnavailable("daemon closed the connection mid-request")
        return json.loads(line)

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.1) -> None:
        """Block until the daemon answers a ping (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.request({"op": "ping"}).get("ok"):
                    return
            except (ServiceUnavailable, json.JSONDecodeError):
                pass
            if time.monotonic() > deadline:
                raise ServiceUnavailable(
                    f"daemon for {self.state_dir!r} not ready after {timeout}s"
                )
            time.sleep(poll)

    # -- operations ----------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(self, job: dict) -> dict:
        return self.request({"op": "submit", "job": job})

    def status(self, job_id: Optional[str] = None, key: Optional[str] = None) -> dict:
        payload: dict = {"op": "status"}
        if job_id is not None:
            payload["id"] = job_id
        if key is not None:
            payload["key"] = key
        return self.request(payload)

    def result(self, job_id: str) -> dict:
        return self.request({"op": "result", "id": job_id})

    def cancel(self, job_id: Optional[str] = None, key: Optional[str] = None) -> dict:
        """Cancel a job by id or key (queued cells settle immediately;
        in-flight cells drain and are written off at the cell boundary)."""
        payload: dict = {"op": "cancel"}
        if job_id is not None:
            payload["id"] = job_id
        if key is not None:
            payload["key"] = key
        return self.request(payload)

    def jobs(self) -> dict:
        return self.request({"op": "jobs"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    # -- convenience ---------------------------------------------------
    def wait_job(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> dict:
        """Poll until the job is terminal; returns its final status.

        Terminal means ``done``, ``failed`` or ``cancelled`` — a job
        cancelled while this client waits returns here, not at the
        timeout.

        Rides out daemon restarts: a :class:`ServiceUnavailable` during
        the wait is retried until the deadline, because the job's state
        survives in the journal and a recovered daemon keeps running it.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                response = self.status(job_id=job_id)
                if response.get("ok"):
                    job = response["job"]
                    if job["state"] in ("done", "failed", "cancelled"):
                        return job
            except ServiceUnavailable:
                pass
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s"
                )
            time.sleep(poll)
