"""Seeded synthetic program generator.

Produces layered, weighted call graphs matching a
:class:`~repro.workloads.spec.BenchmarkSpec`:

* methods are arranged in layers; calls flow to deeper layers (or
  forward within a layer), so every edge satisfies the forward-edge
  structural rule of :class:`repro.jvm.callgraph.Program`;
* a *hot spine* — a per-layer subset of methods wired together with
  boosted call counts and loop weights — produces the concentrated or
  flat execution profiles the spec asks for;
* method sizes shrink toward the leaves (drivers on top, small
  utilities at the bottom), putting high-frequency small callees where
  inlining decisions matter;
* after structure generation, a two-constant calibration pass scales
  loop weights and entry-edge call counts so the program hits the
  spec's ``call_share`` and ``running_seconds`` targets exactly (see
  the module-level derivation in the code).

Everything is driven by a single :func:`repro.rng.rng_for` stream keyed
on the benchmark name, so programs are bit-reproducible across runs and
platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.jvm.bytecode import EXPANSION, WORK_WEIGHT, InstructionKind, InstructionMix, MethodBody
from repro.jvm.callgraph import CallSite, Program
from repro.jvm.methods import MethodInfo
from repro.rng import rng_for
from repro.workloads.spec import BenchmarkSpec, CAL_CALL_COST_CYCLES, CAL_OPT_SPEED

__all__ = ["ProgramGenerator", "generate_program"]

#: growth factor of layer sizes toward the leaves
_LAYER_GROWTH = 1.6

#: probabilities of a call targeting the next layer / two layers down /
#: forward within the same layer
_TARGET_NEXT, _TARGET_SKIP, _TARGET_SAME = 0.80, 0.15, 0.05

#: probability a hot caller's site targets a hot callee
_HOT_AFFINITY = 0.7

#: clip range for per-edge calls-per-invocation
_CALLS_CLIP = (0.05, 500.0)

#: method-size multiplier from top layer (drivers) to leaves (utilities)
_SIZE_MULT_TOP, _SIZE_MULT_LEAF = 1.7, 0.6

#: rank bias of interior (call-site-bearing) methods during profile
#: flattening — hot time gravitates to loop methods around their calls
_INTERIOR_TIME_BIAS = 4.0


@dataclass
class _DraftSite:
    caller: int
    callee: int
    site_index: int
    calls: float


class ProgramGenerator:
    """Generates one :class:`Program` from a spec, deterministically."""

    def __init__(self, spec: BenchmarkSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._rng = rng_for(f"workload:{spec.suite}:{spec.name}", seed)

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        """Produce the calibrated program."""
        spec = self.spec
        layers = self._assign_layers()
        layer_of = {}
        for lidx, members in enumerate(layers):
            for mid in members:
                layer_of[mid] = lidx

        leaf_flags = self._choose_leaves(layers)
        hot = self._choose_hot(layers, leaf_flags)
        sites = self._build_edges(layers, layer_of, hot, leaf_flags)
        bodies = self._build_bodies(layers, layer_of, hot, sites)
        bodies = self._flatten_profile(bodies, sites)

        alpha, beta = self._calibration_factors(bodies, sites)
        # the entry executes exactly once, so beta cannot reach its body
        # work through invocation counts — scale its loop weight
        # directly, keeping every cycle term proportional to beta and
        # the calibration exact even when the entry's work is a visible
        # share of one iteration (tiny, low-fanout graphs)
        bodies = [
            MethodBody(
                mix=b.mix,
                loop_weight=b.loop_weight * alpha * (beta if mid == 0 else 1.0),
            )
            for mid, b in enumerate(bodies)
        ]
        for site in sites:
            if site.caller == 0:
                site.calls *= beta

        methods = [
            MethodInfo(method_id=mid, name=self._method_name(mid, layer_of[mid]), body=body)
            for mid, body in enumerate(bodies)
        ]
        call_sites = [
            CallSite(
                caller_id=s.caller,
                callee_id=s.callee,
                site_index=s.site_index,
                calls_per_invocation=float(s.calls),
            )
            for s in sites
        ]
        return Program(
            name=spec.name, methods=methods, call_sites=call_sites, entry_id=0
        )

    # ------------------------------------------------------------------
    def _method_name(self, mid: int, layer: int) -> str:
        prefix = self.spec.name.capitalize()
        if mid == 0:
            return f"{prefix}.main"
        return f"{prefix}.L{layer}.m{mid}"

    def _assign_layers(self) -> List[List[int]]:
        """Split method ids into layers: [entry] + pyramid of the rest."""
        spec = self.spec
        n_rest = spec.n_methods - 1
        n_layers = min(spec.n_layers, n_rest)
        weights = np.array([_LAYER_GROWTH**l for l in range(n_layers)], dtype=np.float64)
        raw = weights / weights.sum() * n_rest
        sizes = np.maximum(np.floor(raw).astype(int), 1)
        # distribute the rounding remainder to the deepest layers
        while sizes.sum() < n_rest:
            sizes[-1] += 1
        while sizes.sum() > n_rest:
            big = int(np.argmax(sizes))
            sizes[big] -= 1

        layers: List[List[int]] = [[0]]
        next_id = 1
        for size in sizes:
            layers.append(list(range(next_id, next_id + int(size))))
            next_id += int(size)
        return layers

    def _choose_leaves(self, layers: Sequence[Sequence[int]]) -> Dict[int, bool]:
        """Decide which methods have no outgoing calls.

        Everything in the deepest layer is a leaf (there is nowhere
        forward to call); elsewhere a ``leaf_fraction`` sample is.
        """
        flags: Dict[int, bool] = {0: False}
        for members in layers[1:]:
            for mid in members:
                flags[mid] = self._rng.random() < self.spec.leaf_fraction
        return flags

    def _choose_hot(
        self, layers: Sequence[Sequence[int]], leaf_flags: Dict[int, bool]
    ) -> Set[int]:
        """Pick the hot spine: per-layer *interior* (non-leaf) methods.

        Real hot kernels are loop methods that call small helpers at
        high frequency, so the spine is drawn from methods that have
        call sites; the helpers below become hot implicitly through the
        boosted edge weights.
        """
        hot: Set[int] = set()
        for members in layers[1:]:
            interior = [m for m in members if not leaf_flags[m]]
            if not interior:
                continue
            k = max(1, int(round(self.spec.hot_fraction * len(members))))
            chosen = self._rng.choice(
                len(interior), size=min(k, len(interior)), replace=False
            )
            hot.update(interior[int(i)] for i in chosen)
        return hot

    def _draw_calls(self) -> float:
        spec = self.spec
        value = float(
            np.exp(self._rng.normal(math.log(spec.calls_median), spec.calls_sigma))
        )
        return float(min(max(value, _CALLS_CLIP[0]), _CALLS_CLIP[1]))

    def _pick_target_layer(self, layer: int, n_layers: int) -> int:
        if layer >= n_layers - 1:
            return layer  # deepest layer: forward within the layer only
        r = self._rng.random()
        if r < _TARGET_NEXT or layer + 2 >= n_layers:
            return layer + 1
        if r < _TARGET_NEXT + _TARGET_SKIP:
            return layer + 2
        return layer  # same layer, forward only

    def _build_edges(
        self,
        layers: Sequence[List[int]],
        layer_of: Dict[int, int],
        hot: Set[int],
        leaf_flags: Dict[int, bool],
    ) -> List[_DraftSite]:
        spec = self.spec
        rng = self._rng
        n_layers = len(layers)
        sites: List[_DraftSite] = []
        site_counter: Dict[int, int] = {}
        has_incoming: Set[int] = set()

        def add_site(caller: int, callee: int, calls: float) -> None:
            idx = site_counter.get(caller, 0)
            site_counter[caller] = idx + 1
            sites.append(_DraftSite(caller=caller, callee=callee, site_index=idx, calls=calls))
            if callee != caller:
                has_incoming.add(callee)

        # entry: call the phase drivers in layer 1, covering hot ones
        layer1 = layers[1]
        k = min(spec.entry_fanout, len(layer1))
        hot_l1 = [m for m in layer1 if m in hot]
        targets = list(hot_l1[:k])
        remaining = [m for m in layer1 if m not in targets]
        extra = rng.choice(len(remaining), size=min(k - len(targets), len(remaining)), replace=False) if k > len(targets) and remaining else []
        targets.extend(remaining[int(i)] for i in np.atleast_1d(extra))
        for callee in targets:
            add_site(0, callee, 1.0)

        # interior methods
        for lidx in range(1, n_layers):
            for mid in layers[lidx]:
                if not leaf_flags[mid]:
                    fanout = int(rng.poisson(spec.fanout_mean))
                    if mid in hot:
                        # hot kernels always drive at least a couple of
                        # helper calls per loop iteration
                        fanout = max(fanout, 2)
                    for _ in range(fanout):
                        tlayer = self._pick_target_layer(lidx, n_layers)
                        if tlayer == lidx:
                            candidates = [m for m in layers[lidx] if m > mid]
                        else:
                            candidates = list(layers[tlayer])
                        if not candidates:
                            continue
                        if mid in hot and rng.random() < _HOT_AFFINITY:
                            hot_candidates = [m for m in candidates if m in hot]
                            if hot_candidates:
                                candidates = hot_candidates
                        callee = candidates[int(rng.integers(len(candidates)))]
                        calls = self._draw_calls()
                        if mid in hot:
                            # a hot kernel's loop body executes its call
                            # sites once per iteration
                            calls *= spec.hot_call_boost
                        calls = min(calls, _CALLS_CLIP[1])
                        add_site(mid, callee, calls)
                if rng.random() < spec.self_recursion_prob:
                    add_site(mid, mid, float(rng.uniform(0.1, 0.6)))

        # connectivity repair: every non-entry method gets an incoming edge
        for lidx in range(1, n_layers):
            for mid in layers[lidx]:
                if mid in has_incoming:
                    continue
                prev = layers[lidx - 1]
                caller = prev[int(rng.integers(len(prev)))]
                add_site(caller, mid, float(rng.uniform(0.2, 1.0)))

        return sites

    def _build_bodies(
        self,
        layers: Sequence[List[int]],
        layer_of: Dict[int, int],
        hot: Set[int],
        sites: Sequence[_DraftSite],
    ) -> List[MethodBody]:
        spec = self.spec
        rng = self._rng
        n_layers = len(layers)
        invoke_counts: Dict[int, int] = {}
        for site in sites:
            invoke_counts[site.caller] = invoke_counts.get(site.caller, 0) + 1

        weights_map = spec.mix.as_mapping()
        kinds = list(weights_map)
        weights = np.array([weights_map[k] for k in kinds], dtype=np.float64)
        weights = weights / weights.sum()
        mean_expansion = float(
            sum(EXPANSION[k] * w for k, w in zip(kinds, weights))
        )

        bodies: List[MethodBody] = []
        for mid in range(spec.n_methods):
            lidx = layer_of[mid]
            depth_frac = lidx / max(n_layers - 1, 1)
            size_mult = _SIZE_MULT_TOP + (_SIZE_MULT_LEAF - _SIZE_MULT_TOP) * depth_frac
            es_target = (
                float(np.exp(rng.normal(math.log(spec.size_median), spec.size_sigma)))
                * size_mult
            )
            n_inv = invoke_counts.get(mid, 0)
            budget = max(es_target - EXPANSION[InstructionKind.INVOKE] * n_inv, 5.0)
            n_body = max(3, int(round(budget / mean_expansion)))
            counts = rng.multinomial(n_body, weights)
            mapping = {k: int(c) for k, c in zip(kinds, counts)}
            # every method returns at least once
            mapping[InstructionKind.RETURN] = mapping.get(InstructionKind.RETURN, 0) + 1
            if n_inv:
                mapping[InstructionKind.INVOKE] = n_inv

            loop = float(np.exp(rng.normal(0.0, 0.3)))
            if mid in hot:
                loop *= spec.hot_loop_boost
            bodies.append(
                MethodBody(mix=InstructionMix.from_mapping(mapping), loop_weight=loop)
            )
        return bodies

    def _draft_program(
        self, bodies: Sequence[MethodBody], sites: Sequence[_DraftSite]
    ) -> Program:
        methods = [
            MethodInfo(method_id=mid, name=f"tmp{mid}", body=body)
            for mid, body in enumerate(bodies)
        ]
        call_sites = [
            CallSite(
                caller_id=s.caller,
                callee_id=s.callee,
                site_index=s.site_index,
                calls_per_invocation=float(s.calls),
            )
            for s in sites
        ]
        return Program(name="draft", methods=methods, call_sites=call_sites, entry_id=0)

    def _flatten_profile(
        self, bodies: List[MethodBody], sites: Sequence[_DraftSite]
    ) -> List[MethodBody]:
        """Reshape the per-method time profile toward a Zipf law.

        Deep multiplicative call chains naturally concentrate nearly all
        time in a handful of leaves; real benchmark profiles range from
        that (compress) to hundreds of warm methods (DaCapo).  With
        ``profile_flatness < 1`` the profile is reshaped so the method
        ranked ``r`` by time gets a share proportional to
        ``(r+1) ** -(2 * flatness)`` — flatness 0.5 gives the classic
        Zipf-1 profile (top method ~13% on a 900-method program), higher
        values stay progressively more concentrated.  The transform
        adjusts only loop weights — sizes, call structure and invocation
        counts are untouched, so inlining decisions are unaffected.
        """
        gamma = self.spec.profile_flatness
        if gamma >= 1.0:
            return list(bodies)
        draft = self._draft_program(bodies, sites)
        counts = draft.baseline_invocations()

        call_time = np.zeros(len(bodies), dtype=np.float64)
        for s in sites:
            call_time[s.caller] += counts[s.caller] * s.calls * CAL_CALL_COST_CYCLES
        work_time = counts * draft.work
        times = work_time + call_time
        total = float(times.sum())
        if total <= 0:
            raise WorkloadError(f"{self.spec.name}: draft program does no work")

        live = times > 0
        zipf_exponent = 2.0 * gamma
        # interior methods rank ahead of equally-timed leaves: hot spots
        # in real programs are loop methods *containing* call sites, and
        # the adaptive system's inlining leverage lives there
        has_sites = np.zeros(len(bodies), dtype=bool)
        for s in sites:
            has_sites[s.caller] = True
        rank_key = times * np.where(has_sites, _INTERIOR_TIME_BIAS, 1.0)
        order = np.argsort(-rank_key)
        reshaped = np.zeros_like(times)
        rank = 0
        for mid in order:
            if not live[mid]:
                continue
            reshaped[mid] = (rank + 1.0) ** -zipf_exponent
            rank += 1
        reshaped *= total / reshaped.sum()
        # only body work can be reshaped; call overhead is structural.
        # Leave a work floor so no method degenerates to pure calls.
        work_target = np.maximum(reshaped - call_time, 0.05 * reshaped)
        multipliers = np.ones_like(times)
        adjustable = live & (work_time > 0)
        # the entry driver stays cold: it is the once-invoked harness
        # loop, not part of the benchmark's profile shape
        adjustable[0] = False
        multipliers[adjustable] = np.clip(
            work_target[adjustable] / work_time[adjustable], 1e-6, 1e12
        )
        return [
            MethodBody(mix=b.mix, loop_weight=b.loop_weight * float(m))
            for b, m in zip(bodies, multipliers)
        ]

    def _calibration_factors(
        self, bodies: Sequence[MethodBody], sites: Sequence[_DraftSite]
    ) -> Tuple[float, float]:
        """Compute (loop-weight scale, entry-call scale).

        With ``C`` the call-overhead cycles and ``W`` the body-work
        cycles of one uncalibrated iteration, scaling all loop weights
        by ``alpha = C (1-s) / (s W)`` makes call overhead exactly the
        spec's ``call_share`` ``s``; the total is then ``C / s``, and
        scaling the entry's outgoing call counts (plus the entry's own
        loop weight, which invocation counts cannot reach) by
        ``beta = target / (C / s)`` scales every cycle term to hit the
        spec's running-time target without disturbing the share.
        """
        spec = self.spec
        draft = self._draft_program(bodies, sites)
        counts = draft.baseline_invocations()

        dynamic_calls = 0.0
        for s in sites:
            dynamic_calls += counts[s.caller] * s.calls
        # work is valued at the optimizing compiler's speed: the spec's
        # call_share and running_seconds describe steady-state optimized
        # execution (what the paper measures), not baseline code
        work_cycles = float(np.dot(counts, draft.work)) * CAL_OPT_SPEED
        call_cycles = dynamic_calls * CAL_CALL_COST_CYCLES
        if call_cycles <= 0 or work_cycles <= 0:
            raise WorkloadError(
                f"{spec.name}: degenerate draft program "
                f"(calls={call_cycles}, work={work_cycles})"
            )

        s_target = spec.call_share
        alpha = call_cycles * (1.0 - s_target) / (s_target * work_cycles)
        total = call_cycles / s_target
        beta = spec.target_cycles / total
        return float(alpha), float(beta)


def generate_program(spec: BenchmarkSpec, seed: int = 0) -> Program:
    """Convenience wrapper: generate a program from *spec*."""
    return ProgramGenerator(spec, seed=seed).generate()
