"""Synthetic DaCapo (beta050224) + ipsixql + pseudojbb — the paper's
*test* suite (Table 3).

These are the "unseen" programs: the GA never trains on them.  Their
common character relative to SPECjvm98 — much larger code volume, flat
execution profiles, short default-sized runs — is what makes the
compile-time component dominate total time, which is where the tuned
heuristics win big (Table 5: up to 37% average total-time reduction).

* **antlr** — grammar parser/generator: the largest code with the
  shortest run; the paper's biggest total-time win (58% under Opt:Tot).
* **fop** — XSL-FO to PDF formatter: large, allocation-heavy.
* **jython** — Python interpreter in Java: big flat dispatch code.
* **pmd** — Java source analyzer: AST visitors, many small methods.
* **ps** — PostScript interpreter: long-running central loop; the one
  test program where per-program tuning finds nothing (Figure 10).
* **ipsixql** — XML database queried against Shakespeare's works;
  short-running (50% total-time win under Opt:Tot).
* **pseudojbb** — SPECjbb2000 fixed at 70000 transactions, one
  warehouse.
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.spec import BenchmarkSpec, MixWeights

__all__ = ["DACAPO_JBB_SPECS"]

DACAPO_JBB_SPECS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="antlr",
        suite="DaCapo+JBB",
        description="Parses grammar files and generates a parser/lexer for each",
        n_methods=900,
        n_layers=10,
        size_median=20.0,
        size_sigma=0.65,
        fanout_mean=3.4,
        leaf_fraction=0.20,
        calls_median=1.5,
        hot_fraction=0.22,
        hot_loop_boost=2.5,
        call_share=0.30,
        running_seconds=0.75,
        profile_flatness=0.48,
        mix=MixWeights(move=2.6, arith=1.6, memory=2.3, branch=1.7, alloc=0.3, ret=0.4),
    ),
    BenchmarkSpec(
        name="fop",
        suite="DaCapo+JBB",
        description="Parses an XSL-FO file and formats it into a PDF",
        n_methods=1100,
        n_layers=10,
        size_median=20.0,
        size_sigma=0.65,
        fanout_mean=3.2,
        leaf_fraction=0.22,
        calls_median=1.5,
        hot_fraction=0.20,
        hot_loop_boost=2.5,
        call_share=0.30,
        running_seconds=0.8,
        profile_flatness=0.48,
        mix=MixWeights(move=2.6, arith=1.4, memory=2.4, branch=1.5, alloc=0.45, ret=0.4),
    ),
    BenchmarkSpec(
        name="jython",
        suite="DaCapo+JBB",
        description="Interprets a series of Python programs",
        n_methods=1300,
        n_layers=11,
        size_median=18.0,
        size_sigma=0.65,
        fanout_mean=3.6,
        leaf_fraction=0.20,
        calls_median=1.5,
        hot_fraction=0.20,
        hot_loop_boost=3.0,
        call_share=0.36,
        running_seconds=1.5,
        profile_flatness=0.48,
        mix=MixWeights(move=2.8, arith=1.5, memory=2.3, branch=1.7, alloc=0.35, ret=0.4),
    ),
    BenchmarkSpec(
        name="pmd",
        suite="DaCapo+JBB",
        description="Analyzes Java classes for source-code problems",
        n_methods=800,
        n_layers=9,
        size_median=19.0,
        size_sigma=0.65,
        fanout_mean=3.0,
        leaf_fraction=0.22,
        calls_median=1.5,
        hot_fraction=0.18,
        hot_loop_boost=3.0,
        call_share=0.32,
        running_seconds=1.4,
        profile_flatness=0.5,
        mix=MixWeights(move=2.6, arith=1.5, memory=2.4, branch=1.6, alloc=0.3, ret=0.4),
    ),
    BenchmarkSpec(
        name="ps",
        suite="DaCapo+JBB",
        description="Reads and interprets a PostScript file",
        n_methods=400,
        n_layers=8,
        size_median=22.0,
        size_sigma=0.6,
        fanout_mean=2.6,
        leaf_fraction=0.25,
        calls_median=1.6,
        hot_fraction=0.08,
        hot_loop_boost=6.0,
        call_share=0.24,
        running_seconds=6.0,
        profile_flatness=0.8,
        mix=MixWeights(move=2.4, arith=1.8, memory=2.4, branch=1.6, alloc=0.2, ret=0.35),
    ),
    BenchmarkSpec(
        name="ipsixql",
        suite="DaCapo+JBB",
        description="XML database queried against the works of Shakespeare",
        n_methods=600,
        n_layers=9,
        size_median=18.0,
        size_sigma=0.65,
        fanout_mean=3.0,
        leaf_fraction=0.22,
        calls_median=1.5,
        hot_fraction=0.20,
        hot_loop_boost=2.5,
        call_share=0.28,
        running_seconds=0.8,
        profile_flatness=0.5,
        mix=MixWeights(move=2.6, arith=1.5, memory=2.5, branch=1.5, alloc=0.3, ret=0.4),
    ),
    BenchmarkSpec(
        name="pseudojbb",
        suite="DaCapo+JBB",
        description="SPECjbb2000 modified to run 70000 transactions, one warehouse",
        n_methods=500,
        n_layers=9,
        size_median=19.0,
        size_sigma=0.65,
        fanout_mean=3.0,
        leaf_fraction=0.22,
        calls_median=1.6,
        hot_fraction=0.15,
        hot_loop_boost=3.5,
        call_share=0.30,
        running_seconds=1.4,
        profile_flatness=0.5,
        mix=MixWeights(move=2.5, arith=1.7, memory=2.4, branch=1.5, alloc=0.35, ret=0.4),
    ),
)
