"""Program serialization: save/load generated call graphs as JSON.

Lets users snapshot the exact program a result was produced on (e.g.
to attach to a bug report), or hand-author small programs without going
through the generator.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import WorkloadError
from repro.jvm.bytecode import InstructionKind, InstructionMix, MethodBody
from repro.jvm.callgraph import CallSite, Program
from repro.jvm.methods import MethodInfo

__all__ = ["program_to_dict", "program_from_dict", "save_program", "load_program"]

_FORMAT_VERSION = 1


def program_to_dict(program: Program) -> Dict[str, Any]:
    """Encode *program* as plain JSON-serializable data."""
    return {
        "version": _FORMAT_VERSION,
        "name": program.name,
        "entry_id": program.entry_id,
        "methods": [
            {
                "name": m.name,
                "loop_weight": m.body.loop_weight,
                "mix": {kind.value: count for kind, count in m.body.mix},
            }
            for m in program.methods
        ],
        "call_sites": [
            {
                "caller": s.caller_id,
                "callee": s.callee_id,
                "site": s.site_index,
                "calls": s.calls_per_invocation,
            }
            for s in program.call_sites
        ],
    }


def program_from_dict(data: Dict[str, Any]) -> Program:
    """Inverse of :func:`program_to_dict`."""
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported program format version: {data.get('version') if isinstance(data, dict) else '?'}"
        )
    try:
        methods = []
        for mid, entry in enumerate(data["methods"]):
            mix = InstructionMix.from_mapping(
                {InstructionKind(kind): int(count) for kind, count in entry["mix"].items()}
            )
            body = MethodBody(mix=mix, loop_weight=float(entry["loop_weight"]))
            methods.append(MethodInfo(method_id=mid, name=entry["name"], body=body))
        sites = [
            CallSite(
                caller_id=int(s["caller"]),
                callee_id=int(s["callee"]),
                site_index=int(s["site"]),
                calls_per_invocation=float(s["calls"]),
            )
            for s in data["call_sites"]
        ]
        return Program(
            name=str(data["name"]),
            methods=methods,
            call_sites=sites,
            entry_id=int(data["entry_id"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed program data: {exc}") from exc


def save_program(program: Program, path: str) -> None:
    """Write *program* to *path* as JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(program_to_dict(program), handle)
    except OSError as exc:
        raise WorkloadError(f"cannot write program to {path!r}: {exc}") from exc


def load_program(path: str) -> Program:
    """Read a program written by :func:`save_program`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise WorkloadError(f"cannot read program from {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"corrupt program file {path!r}: {exc}") from exc
    return program_from_dict(data)
