"""Benchmark specification records.

A :class:`BenchmarkSpec` captures everything the generator needs to
produce a program with a given *performance character*: how much code,
how big the methods, how call-dense the execution, how concentrated the
hot set, and how long one steady-state iteration takes.  The values for
the fourteen concrete benchmarks live in
:mod:`repro.workloads.specjvm98` and :mod:`repro.workloads.dacapo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.jvm.bytecode import InstructionKind

__all__ = ["MixWeights", "BenchmarkSpec", "CAL_CALL_COST_CYCLES", "CAL_CLOCK_GHZ"]

#: call-cost proxy (cycles per dynamic call) used when calibrating a
#: spec's call share; roughly the x86 model's effective call cost
CAL_CALL_COST_CYCLES = 30.0

#: clock used to convert a spec's running_seconds into target cycles
CAL_CLOCK_GHZ = 2.8

#: body work is calibrated against *optimized* code (the paper's
#: running-time numbers are all steady-state optimized runs), so the
#: call_share target is the share seen at the opt compiler's speed
CAL_OPT_SPEED = 0.5


@dataclass(frozen=True)
class MixWeights:
    """Relative instruction-kind weights of generated method bodies.

    INVOKE is excluded — call instructions are added to match the
    generated call sites exactly.
    """

    move: float = 2.5
    arith: float = 2.0
    memory: float = 1.8
    branch: float = 1.2
    alloc: float = 0.15
    ret: float = 0.3

    def as_mapping(self) -> Mapping[InstructionKind, float]:
        """Weights keyed by :class:`InstructionKind` (no INVOKE)."""
        return {
            InstructionKind.MOVE: self.move,
            InstructionKind.ARITH: self.arith,
            InstructionKind.MEMORY: self.memory,
            InstructionKind.BRANCH: self.branch,
            InstructionKind.ALLOC: self.alloc,
            InstructionKind.RETURN: self.ret,
        }

    def __post_init__(self) -> None:
        if any(
            w < 0 for w in (self.move, self.arith, self.memory, self.branch, self.alloc, self.ret)
        ):
            raise ConfigurationError("mix weights must be non-negative")
        if self.move + self.arith + self.memory + self.branch + self.alloc + self.ret <= 0:
            raise ConfigurationError("mix weights must not all be zero")


@dataclass(frozen=True)
class BenchmarkSpec:
    """Generation recipe for one synthetic benchmark.

    Structural knobs
    ----------------
    n_methods / n_layers:
        Code volume and maximum call-chain depth; methods are arranged
        in layers and calls flow to deeper layers (drivers at the top,
        small utilities at the leaves).
    size_median / size_sigma:
        Lognormal distribution of per-method *estimated machine size* —
        the quantity the Figure 3/4 tests compare against the heuristic
        parameters, so its placement relative to the Table 1 ranges
        shapes the tuning landscape.
    fanout_mean / leaf_fraction:
        Call sites per method (Poisson) and the fraction of methods with
        none.
    calls_median / calls_sigma:
        Lognormal executions-per-invocation of each call site.
    self_recursion_prob:
        Probability a method carries a self-recursive site.

    Hot-spot knobs
    --------------
    hot_fraction:
        Fraction of methods on the hot spine.  Small = concentrated
        profile (compress); large = flat profile (the DaCapo programs,
        whose flat profiles make many methods borderline-hot under the
        adaptive system).
    hot_call_boost / hot_loop_boost:
        Multipliers on hot-edge call counts and hot-method loop weights.

    Calibration targets
    -------------------
    call_share:
        Fraction of (no-inlining) running time spent in call overhead at
        the calibration call cost — high for call-dense programs (jess,
        raytrace) which is where inlining pays.
    running_seconds:
        Steady-state seconds of one iteration without inlining at the
        calibration clock.  Together with code volume this fixes the
        compile-time share of total time, the axis the paper's
        total-time results turn on.
    profile_flatness:
        Exponent gamma in (0, 1]: per-method time shares are reshaped
        toward ``share**gamma`` (renormalized).  1.0 keeps the natural
        concentrated profile of a kernel benchmark (compress); smaller
        values flatten it, putting many methods above the adaptive
        system's promotion threshold — the signature property of the
        DaCapo programs.
    """

    name: str
    suite: str
    description: str
    n_methods: int
    n_layers: int = 8
    size_median: float = 26.0
    size_sigma: float = 0.85
    fanout_mean: float = 3.0
    leaf_fraction: float = 0.25
    calls_median: float = 1.6
    calls_sigma: float = 0.9
    self_recursion_prob: float = 0.04
    hot_fraction: float = 0.08
    hot_call_boost: float = 6.0
    hot_loop_boost: float = 4.0
    call_share: float = 0.25
    running_seconds: float = 5.0
    entry_fanout: int = 5
    profile_flatness: float = 1.0
    mix: MixWeights = field(default_factory=MixWeights)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("benchmark name must be non-empty")
        if self.n_methods < 3:
            raise ConfigurationError(f"{self.name}: n_methods must be >= 3")
        if self.n_layers < 2:
            raise ConfigurationError(f"{self.name}: n_layers must be >= 2")
        if self.size_median <= 0 or self.size_sigma < 0:
            raise ConfigurationError(f"{self.name}: invalid size distribution")
        if self.fanout_mean < 0:
            raise ConfigurationError(f"{self.name}: fanout_mean must be >= 0")
        if not 0 <= self.leaf_fraction < 1:
            raise ConfigurationError(f"{self.name}: leaf_fraction must be in [0, 1)")
        if self.calls_median <= 0 or self.calls_sigma < 0:
            raise ConfigurationError(f"{self.name}: invalid calls distribution")
        if not 0 <= self.self_recursion_prob < 1:
            raise ConfigurationError(f"{self.name}: self_recursion_prob must be in [0, 1)")
        if not 0 < self.hot_fraction <= 1:
            raise ConfigurationError(f"{self.name}: hot_fraction must be in (0, 1]")
        if self.hot_call_boost < 1 or self.hot_loop_boost < 1:
            raise ConfigurationError(f"{self.name}: hot boosts must be >= 1")
        if not 0 < self.call_share < 1:
            raise ConfigurationError(f"{self.name}: call_share must be in (0, 1)")
        if self.running_seconds <= 0:
            raise ConfigurationError(f"{self.name}: running_seconds must be positive")
        if self.entry_fanout < 1:
            raise ConfigurationError(f"{self.name}: entry_fanout must be >= 1")
        if not 0 < self.profile_flatness <= 1:
            raise ConfigurationError(f"{self.name}: profile_flatness must be in (0, 1]")

    @property
    def target_cycles(self) -> float:
        """Calibration target: cycles of one no-inlining iteration."""
        return self.running_seconds * CAL_CLOCK_GHZ * 1e9

    def scaled(self, **overrides) -> "BenchmarkSpec":
        """Return a copy with selected fields replaced (used by tests
        and examples to derive small variants)."""
        return replace(self, **overrides)
