"""Synthetic benchmark programs.

The paper trains on SPECjvm98 and tests on DaCapo+JBB.  Neither suite
(nor a JVM to run them) is available offline, so this package generates
*synthetic equivalents*: seeded, layered, weighted call graphs whose
published structural characteristics — code volume, method-size
distribution, call density, hot-spot concentration, running-time scale —
are encoded per benchmark in :mod:`repro.workloads.specjvm98` and
:mod:`repro.workloads.dacapo`.  See DESIGN.md §2 for why this preserves
the behaviour the tuning loop observes.
"""

from repro.workloads.spec import BenchmarkSpec, MixWeights
from repro.workloads.generator import ProgramGenerator, generate_program
from repro.workloads.specjvm98 import SPECJVM98_SPECS
from repro.workloads.dacapo import DACAPO_JBB_SPECS
from repro.workloads.serialization import (
    program_to_dict,
    program_from_dict,
    save_program,
    load_program,
)
from repro.workloads.suites import (
    BenchmarkSuite,
    SPECJVM98,
    DACAPO_JBB,
    get_suite,
    get_benchmark,
    available_suites,
)

__all__ = [
    "BenchmarkSpec",
    "MixWeights",
    "ProgramGenerator",
    "generate_program",
    "SPECJVM98_SPECS",
    "DACAPO_JBB_SPECS",
    "BenchmarkSuite",
    "SPECJVM98",
    "DACAPO_JBB",
    "get_suite",
    "get_benchmark",
    "available_suites",
    "program_to_dict",
    "program_from_dict",
    "save_program",
    "load_program",
]
