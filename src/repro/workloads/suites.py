"""Benchmark-suite registry with program caching.

Program generation is deterministic but not free (a DaCapo-sized graph
takes tens of milliseconds), and the tuning loop runs the same programs
thousands of times, so generated :class:`~repro.jvm.callgraph.Program`
objects are cached per ``(benchmark, seed)``.  Programs are immutable,
so sharing is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.jvm.callgraph import Program
from repro.workloads.dacapo import DACAPO_JBB_SPECS
from repro.workloads.generator import generate_program
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.specjvm98 import SPECJVM98_SPECS

__all__ = [
    "BenchmarkSuite",
    "SPECJVM98",
    "DACAPO_JBB",
    "get_suite",
    "get_benchmark",
    "available_suites",
]


@dataclass(frozen=True)
class BenchmarkSuite:
    """An ordered, named collection of benchmark specs."""

    name: str
    specs: Tuple[BenchmarkSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError(f"suite {self.name!r} is empty")
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"suite {self.name!r} has duplicate benchmark names")

    @property
    def benchmark_names(self) -> Tuple[str, ...]:
        """Names of the member benchmarks, in suite order."""
        return tuple(s.name for s in self.specs)

    def spec(self, name: str) -> BenchmarkSpec:
        """Look up one member spec by benchmark name."""
        for s in self.specs:
            if s.name == name:
                return s
        raise ConfigurationError(
            f"suite {self.name!r} has no benchmark {name!r}; "
            f"members: {list(self.benchmark_names)}"
        )

    def programs(self, seed: int = 0) -> List[Program]:
        """Generate (or fetch cached) programs for every member."""
        return [_cached_program(self.name, s.name, seed) for s in self.specs]

    def program(self, name: str, seed: int = 0) -> Program:
        """Generate (or fetch cached) one member program."""
        self.spec(name)  # validates membership
        return _cached_program(self.name, name, seed)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)


#: the paper's training suite (Table 2)
SPECJVM98 = BenchmarkSuite(name="SPECjvm98", specs=SPECJVM98_SPECS)

#: the paper's test suite (Table 3)
DACAPO_JBB = BenchmarkSuite(name="DaCapo+JBB", specs=DACAPO_JBB_SPECS)

_SUITES: Dict[str, BenchmarkSuite] = {
    "specjvm98": SPECJVM98,
    "dacapo+jbb": DACAPO_JBB,
    "dacapo": DACAPO_JBB,
}


def available_suites() -> List[str]:
    """Canonical names of the registered suites."""
    return [SPECJVM98.name, DACAPO_JBB.name]


def get_suite(name: str) -> BenchmarkSuite:
    """Look up a suite by (case-insensitive) name."""
    try:
        return _SUITES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {name!r}; available: {available_suites()}"
        ) from None


def get_benchmark(name: str, seed: int = 0) -> Program:
    """Find *name* in any registered suite and return its program."""
    for suite in (SPECJVM98, DACAPO_JBB):
        if name in suite.benchmark_names:
            return suite.program(name, seed)
    raise ConfigurationError(f"no suite contains a benchmark named {name!r}")


@lru_cache(maxsize=256)
def _cached_program(suite_name: str, bench_name: str, seed: int) -> Program:
    suite = get_suite(suite_name)
    return generate_program(suite.spec(bench_name), seed=seed)
