"""Synthetic SPECjvm98 — the paper's *training* suite (Table 2).

Each spec encodes the published performance character of the real
benchmark (run with the ``-s100`` data set, as in the paper):

* **compress** — LZW kernel: tiny hot set of numeric loops, few calls,
  long-running.  Compile time is irrelevant; the paper finds *Opt* best
  for it (Figure 2a).
* **jess** — expert-system shell: hundreds of small methods, very
  call-dense, short-running.  Compile-sensitive; the paper finds
  inlining depth 0 best under *Opt* (Figure 2b).
* **db** — in-memory database: memory-bound loops over records.
* **javac** — the JDK 1.0.2 compiler: the largest code volume in the
  suite, flat profile, short run — one of the programs whose *Opt*
  total time the default heuristic degrades badly (Figure 1a).
* **mpegaudio** — MP3 decoder: numeric loops, moderate call density.
* **raytrace** — single-threaded mtrt: very call-dense vector/ray math
  in tiny methods; the biggest running-time winner from inlining.
* **jack** — parser generator: many methods, token-pump call chains,
  short-running.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.spec import BenchmarkSpec, MixWeights

__all__ = ["SPECJVM98_SPECS"]

SPECJVM98_SPECS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="compress",
        suite="SPECjvm98",
        description="Java version of 129.compress from SPEC 95 (LZW kernel)",
        n_methods=80,
        n_layers=6,
        size_median=24.0,
        size_sigma=0.6,
        fanout_mean=2.2,
        leaf_fraction=0.30,
        calls_median=1.8,
        hot_fraction=0.06,
        hot_loop_boost=8.0,
        call_share=0.08,
        running_seconds=8.0,
        profile_flatness=1.0,
        mix=MixWeights(move=2.0, arith=3.5, memory=2.0, branch=1.4, alloc=0.05, ret=0.3),
    ),
    BenchmarkSpec(
        name="jess",
        suite="SPECjvm98",
        description="Java expert system shell (rule matching over facts)",
        n_methods=450,
        n_layers=9,
        size_median=16.0,
        size_sigma=0.55,
        fanout_mean=4.0,
        leaf_fraction=0.20,
        calls_median=1.5,
        hot_fraction=0.12,
        call_share=0.32,
        running_seconds=2.0,
        profile_flatness=0.7,
        mix=MixWeights(move=2.8, arith=1.6, memory=2.2, branch=1.5, alloc=0.25, ret=0.4),
    ),
    BenchmarkSpec(
        name="db",
        suite="SPECjvm98",
        description="Builds and operates on an in-memory database",
        n_methods=100,
        n_layers=6,
        size_median=22.0,
        size_sigma=0.6,
        fanout_mean=2.5,
        leaf_fraction=0.28,
        calls_median=1.7,
        hot_fraction=0.08,
        hot_loop_boost=6.0,
        call_share=0.16,
        running_seconds=11.0,
        profile_flatness=0.85,
        mix=MixWeights(move=2.2, arith=1.4, memory=3.2, branch=1.4, alloc=0.1, ret=0.3),
    ),
    BenchmarkSpec(
        name="javac",
        suite="SPECjvm98",
        description="Java source to bytecode compiler in JDK 1.0.2",
        n_methods=700,
        n_layers=10,
        size_median=22.0,
        size_sigma=0.65,
        fanout_mean=3.4,
        leaf_fraction=0.22,
        calls_median=1.5,
        hot_fraction=0.18,
        hot_loop_boost=3.0,
        call_share=0.30,
        running_seconds=2.2,
        profile_flatness=0.62,
        mix=MixWeights(move=2.6, arith=1.6, memory=2.4, branch=1.6, alloc=0.3, ret=0.4),
    ),
    BenchmarkSpec(
        name="mpegaudio",
        suite="SPECjvm98",
        description="Decodes an MPEG-3 audio file (numeric filter loops)",
        n_methods=140,
        n_layers=7,
        size_median=26.0,
        size_sigma=0.6,
        fanout_mean=2.4,
        leaf_fraction=0.30,
        calls_median=1.8,
        hot_fraction=0.07,
        hot_loop_boost=7.0,
        call_share=0.12,
        running_seconds=6.0,
        profile_flatness=0.95,
        mix=MixWeights(move=2.0, arith=3.8, memory=1.8, branch=1.2, alloc=0.05, ret=0.3),
    ),
    BenchmarkSpec(
        name="raytrace",
        suite="SPECjvm98",
        description="Raytracer on a dinosaur scene (single-threaded mtrt)",
        n_methods=160,
        n_layers=8,
        size_median=15.0,
        size_sigma=0.55,
        fanout_mean=3.2,
        leaf_fraction=0.25,
        calls_median=1.8,
        hot_fraction=0.10,
        hot_loop_boost=5.0,
        call_share=0.36,
        running_seconds=4.0,
        profile_flatness=0.8,
        mix=MixWeights(move=2.4, arith=3.0, memory=2.0, branch=1.0, alloc=0.2, ret=0.4),
    ),
    BenchmarkSpec(
        name="jack",
        suite="SPECjvm98",
        description="Java parser generator with lexical analysis",
        n_methods=550,
        n_layers=9,
        size_median=18.0,
        size_sigma=0.6,
        fanout_mean=3.0,
        leaf_fraction=0.22,
        calls_median=1.5,
        hot_fraction=0.15,
        hot_loop_boost=3.5,
        call_share=0.28,
        running_seconds=1.7,
        profile_flatness=0.75,
        mix=MixWeights(move=2.6, arith=1.5, memory=2.3, branch=1.7, alloc=0.25, ret=0.4),
    ),
)
