"""The accelerated evaluation engine.

:class:`EvaluationAccelerator` replaces the per-genome hot path of
:class:`repro.jvm.runtime.VirtualMachine` with three layers of reuse:

* **method level** — compiled versions are served from a
  :class:`~repro.perf.plancache.MethodPlanCache`; a genome only pays for
  plan expansion + compilation of methods whose parameter region has
  never been visited;
* **program level** — the tuple of per-method cache entries (the *plan
  signature*) keys a memo of whole :class:`ExecutionReport` objects: two
  genomes that cross no decision boundary anywhere in the program reuse
  the entire run, across the population and across generations;
* **scenario level** — under *Adapt*, everything up to the optimizing
  recompiles (baseline compilation, profiling, hot-site detection,
  promotion-level choice) is parameter-independent and computed once per
  program.

On a signature miss, run accounting (invocation propagation, compile
cycle totals, code-cache install, per-method time fill) is done with
NumPy gathers over the cache's column arrays instead of per-method
Python loops.

Bitwise exactness is a hard requirement here: the accounting reproduces
the *seed* implementation's floating-point results to the last bit, so
reductions deliberately mirror the reference's accumulation order —
sequential left-to-right Python sums where the reference accumulated in
a loop (NumPy's pairwise ``ndarray.sum`` would round differently), and
NumPy elementwise operations only where the reference performed
independent scalar operations.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.jvm.callgraph import Program
from repro.jvm.codecache import hot_code_size, pressure_factor
from repro.jvm.compiled import CompiledMethod
from repro.jvm.inlining import InliningParameters
from repro.perf.fastcompile import TracedCompiler
from repro.perf.plancache import MethodPlanCache

__all__ = ["AcceleratorStats", "EvaluationAccelerator", "aggregate_stats"]

#: raw counter fields of AcceleratorStats, used by aggregation and the
#: campaign runner's per-task deltas
STAT_COUNTERS = (
    "runs",
    "report_hits",
    "report_misses",
    "method_lookups",
    "method_builds",
    "adaptive_skeletons",
    "batch_generations",
    "batch_dedup_hits",
    "adaptive_matrix_propagations",
    "adaptive_matrix_columns",
    "adaptive_grouped_compiles",
    "adaptive_group_covered",
    "native_propagations",
    "native_rows",
    "native_fallbacks",
    "plan_preloaded",
    "plan_warm_hits",
    "plan_recompiles",
    "degraded_runs",
    "degraded_batches",
)


@dataclass
class AcceleratorStats:
    """Counters describing how much work the accelerator avoided."""

    runs: int = 0
    report_hits: int = 0
    report_misses: int = 0
    method_lookups: int = 0
    method_builds: int = 0
    adaptive_skeletons: int = 0
    #: generation batches evaluated through repro.perf.batch
    batch_generations: int = 0
    #: (genome, program) runs served by an in-batch representative
    batch_dedup_hits: int = 0
    #: adaptive-kernel matrix propagations (one per accounted batch)
    adaptive_matrix_propagations: int = 0
    #: representative columns stacked across those propagations
    adaptive_matrix_columns: int = 0
    #: cold compiles whose region covered more than one pending genome
    adaptive_grouped_compiles: int = 0
    #: pending genomes resolved by another genome's compile (region fan-outs)
    adaptive_group_covered: int = 0
    #: compiled-kernel invocations (repro.perf.native; one per batch)
    native_propagations: int = 0
    #: representative rows propagated by the compiled kernels
    native_rows: int = 0
    #: compiled-kernel calls that raised and fell back to the numpy
    #: path (the backend is then disabled for this accelerator)
    native_fallbacks: int = 0
    #: plan-cache entries preloaded from the campaign's shm archive
    #: (repro.perf.planshare) instead of compiled locally
    plan_preloaded: int = 0
    #: method resolutions in warm-started (preloaded) program states
    #: that were served from the cache instead of compiling
    plan_warm_hits: int = 0
    #: compiles a warm-started state still had to run because the
    #: archive lacked the region (the warm-start miss count)
    plan_recompiles: int = 0
    #: accelerated runs that raised and fell back to ``run_reference``
    degraded_runs: int = 0
    #: generation batches that raised and fell back to the serial
    #: memoized path (see docs/RESILIENCE.md: a kernel bug degrades
    #: throughput, never correctness)
    degraded_batches: int = 0

    @property
    def method_hits(self) -> int:
        """Method versions served from the plan cache."""
        return self.method_lookups - self.method_builds

    @property
    def report_hit_rate(self) -> float:
        """Fraction of runs answered entirely from the report memo."""
        if self.runs == 0:
            return 0.0
        return self.report_hits / self.runs

    @property
    def method_hit_rate(self) -> float:
        """Fraction of method resolutions that avoided a compile."""
        if self.method_lookups == 0:
            return 0.0
        return self.method_hits / self.method_lookups

    @property
    def batch_dedup_rate(self) -> float:
        """Fraction of runs answered by an in-batch representative."""
        if self.runs == 0:
            return 0.0
        return self.batch_dedup_hits / self.runs

    @property
    def adaptive_columns_per_propagation(self) -> float:
        """Mean representative columns per matrix propagation."""
        if self.adaptive_matrix_propagations == 0:
            return 0.0
        return self.adaptive_matrix_columns / self.adaptive_matrix_propagations

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (benchmark output, logging)."""
        return {
            "runs": self.runs,
            "report_hits": self.report_hits,
            "report_misses": self.report_misses,
            "report_hit_rate": self.report_hit_rate,
            "method_lookups": self.method_lookups,
            "method_builds": self.method_builds,
            "method_hits": self.method_hits,
            "method_hit_rate": self.method_hit_rate,
            "adaptive_skeletons": self.adaptive_skeletons,
            "batch_generations": self.batch_generations,
            "batch_dedup_hits": self.batch_dedup_hits,
            "batch_dedup_rate": self.batch_dedup_rate,
            "adaptive_matrix_propagations": self.adaptive_matrix_propagations,
            "adaptive_matrix_columns": self.adaptive_matrix_columns,
            "adaptive_columns_per_propagation": self.adaptive_columns_per_propagation,
            "adaptive_grouped_compiles": self.adaptive_grouped_compiles,
            "adaptive_group_covered": self.adaptive_group_covered,
            "native_propagations": self.native_propagations,
            "native_rows": self.native_rows,
            "native_fallbacks": self.native_fallbacks,
            "plan_preloaded": self.plan_preloaded,
            "plan_warm_hits": self.plan_warm_hits,
            "plan_recompiles": self.plan_recompiles,
            "degraded_runs": self.degraded_runs,
            "degraded_batches": self.degraded_batches,
        }

    def add(self, other: "AcceleratorStats") -> None:
        """Accumulate *other*'s raw counters into this instance."""
        for name in STAT_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))


#: sentinel: the accelerator has not yet resolved its kernel backend
_NATIVE_UNSET = object()

#: live accelerators of this process, for campaign/report-level stats
_LIVE_ACCELERATORS: "weakref.WeakSet[EvaluationAccelerator]" = weakref.WeakSet()

#: counters folded in from accelerators that were retired or collected;
#: keeps process totals exact regardless of GC timing
_RETIRED_TOTALS = AcceleratorStats()


def _fold_retired(stats: AcceleratorStats) -> None:
    _RETIRED_TOTALS.add(stats)


def aggregate_stats(live_only: bool = False) -> AcceleratorStats:
    """Summed counters of this process's accelerators.

    The default covers the whole process history: live accelerators
    plus the folded totals of every accelerator that was retired (or
    garbage-collected — a ``weakref.finalize`` folds its counters at
    collection time, so the sum does not depend on GC timing).  The
    experiment report prints these totals.

    ``live_only=True`` restricts the sum to accelerators still alive,
    which is what per-task attribution wants: a campaign worker that
    builds a fresh accelerator per cell must not re-count the counters
    of previous cells' dead accelerators (call
    :meth:`EvaluationAccelerator.retire` when a cell finishes).
    """
    total = AcceleratorStats()
    if not live_only:
        total.add(_RETIRED_TOTALS)
    for accelerator in list(_LIVE_ACCELERATORS):
        total.add(accelerator.stats)
    return total


class _ProgramState:
    """Per-program caches owned by one accelerator."""

    __slots__ = (
        "program",
        "reachable",
        "reachable_list",
        "cache",
        "reports",
        "traced",
        "skeleton",
        "key_mids",
        "key_mids_array",
        "promoted_pos",
        "invoked",
        "invoked_pos",
        "baseline_cpi",
        "baseline_sizes",
        "baseline_inline",
        "baseline_info",
        "promotion_level",
        "native_ctx",
        "preloaded",
    )

    def __init__(self, program: Program) -> None:
        self.program = program
        self.reachable = np.array(sorted(program.reachable_methods()), dtype=np.int64)
        self.reachable_list: List[int] = self.reachable.tolist()
        self.cache = MethodPlanCache(len(program))
        self.reports: Dict[Tuple[int, ...], object] = {}
        self.traced: Optional[TracedCompiler] = None  # built on first miss
        # adaptive-only fields, filled lazily by _ensure_skeleton
        self.skeleton = None
        self.key_mids: Optional[List[int]] = None
        self.key_mids_array: Optional[np.ndarray] = None
        self.promoted_pos: Optional[np.ndarray] = None
        self.invoked: Optional[np.ndarray] = None
        self.invoked_pos: Optional[Dict[int, int]] = None
        self.baseline_cpi: Optional[np.ndarray] = None
        self.baseline_sizes: Optional[np.ndarray] = None
        self.baseline_inline: Optional[np.ndarray] = None
        self.baseline_info: Optional[
            Dict[int, Tuple[float, List[int], List[float]]]
        ] = None
        self.promotion_level: Optional[Dict[int, int]] = None
        # flat arrays prepared for the compiled adaptive kernel
        # (promoted-slot map + baseline CSR); built on first native use
        self.native_ctx: Optional[Tuple] = None
        # True when the plan cache was warm-started from the campaign's
        # shm archive; gates the warm-hit/recompile accounting
        self.preloaded = False


class EvaluationAccelerator:
    """Memoizing, vectorized drop-in for the VM's run loop."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self.stats = AcceleratorStats()
        self._states: Dict[int, _ProgramState] = {}
        # compiled-kernel backend: _NATIVE_UNSET until first use, then
        # the process-wide selection (or an explicit override); set to
        # None after a kernel failure so one bad call degrades this
        # accelerator to the numpy path permanently
        self._native = _NATIVE_UNSET
        _LIVE_ACCELERATORS.add(self)
        # fold the counters into the retired totals when this
        # accelerator is collected without an explicit retire()
        self._stats_finalizer = weakref.finalize(self, _fold_retired, self.stats)

    def retire(self) -> None:
        """Fold this accelerator's counters into the retired totals now.

        Idempotent.  After retiring, the accelerator no longer appears
        in ``aggregate_stats(live_only=True)``; its history stays in
        the default (process-total) aggregation exactly once.
        """
        if self._stats_finalizer.detach() is not None:
            _fold_retired(self.stats)
        _LIVE_ACCELERATORS.discard(self)

    # ------------------------------------------------------------------
    def native_backend(self):
        """The compiled kernel backend serving this accelerator.

        Resolved lazily from the process-wide ladder
        (:func:`repro.perf.native.get_backend`); None means the numpy
        rung.  :meth:`disable_native` pins None after a kernel failure;
        :meth:`force_native_backend` pins a specific backend (tests and
        benchmarks use it to compare rungs).
        """
        if self._native is _NATIVE_UNSET:
            from repro.perf.native import get_backend

            self._native = get_backend()
        return self._native

    def force_native_backend(self, backend) -> None:
        """Pin the kernel backend (None = numpy rung) for this
        accelerator, bypassing the process-wide selection."""
        self._native = backend

    def disable_native(self) -> None:
        """Degrade this accelerator to the numpy rung permanently."""
        self._native = None

    # ------------------------------------------------------------------
    def _state_for(self, program: Program) -> _ProgramState:
        state = self._states.get(id(program))
        if state is None or state.program is not program:
            state = _ProgramState(program)
            self._preload_plans(state)
            self._states[id(program)] = state
        return state

    def _preload_plans(self, state: _ProgramState) -> None:
        """Warm-start a fresh program state from the shared plan archive.

        Applies only when the process holds a plan-share client (see
        :mod:`repro.perf.planshare`).  Preloaded entries are exact
        reconstructions of the coordinator's compiled versions, so the
        warm cache resolves and accounts bitwise-identically to a cold
        one that compiled the same regions itself.  Any failure leaves
        the state cold — sharing never breaks a run.
        """
        try:
            from repro.perf.planshare import get_client, plan_key

            client = get_client()
            if client is None:
                return
            vm = self.vm
            arrays = client.arrays_for(
                plan_key(state.program, vm.machine, vm.scenario, vm.cost_model)
            )
            if arrays is None:
                return
            added = state.cache.load_arrays(arrays)
            if added:
                self.stats.plan_preloaded += added
                state.preloaded = True
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            state.preloaded = False

    def clear(self) -> None:
        """Drop all cached state (programs, plans, reports)."""
        self._states.clear()

    def clear_report_memo(self) -> None:
        """Drop only the per-signature report memos, keeping the plan
        caches and adaptive skeletons warm.

        This is the steady-state regime the adaptive-kernel benchmark
        measures: every signature re-runs its accounting while compile
        work stays fully cached.
        """
        for state in self._states.values():
            state.reports.clear()

    def _traced(self, state: _ProgramState) -> TracedCompiler:
        traced = state.traced
        if traced is None:
            traced = TracedCompiler(state.program, self.vm.machine, self.vm.cost_model)
            state.traced = traced
        return traced

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        params: InliningParameters,
        attach_params: bool = True,
    ):
        """Accelerated equivalent of :meth:`VirtualMachine.run`.

        With ``attach_params=False`` a report-memo hit returns the
        memoized :class:`ExecutionReport` object itself instead of a
        ``dataclasses.replace`` copy stamped with the caller's *params*
        — the fitness layer uses this because no metric reads
        ``params``, and it spares one dataclass allocation per memo hit.
        """
        self.stats.runs += 1
        if self.vm.scenario.is_adaptive:
            return self._run_adaptive(program, params, attach_params)
        return self._run_optimizing(program, params, attach_params)

    # ------------------------------------------------------------------
    # Opt scenario
    # ------------------------------------------------------------------
    def _run_optimizing(
        self,
        program: Program,
        params: InliningParameters,
        attach_params: bool = True,
    ):
        from repro.jvm.runtime import ExecutionReport

        vm = self.vm
        state = self._state_for(program)
        cache = state.cache
        values = params.as_tuple()

        resolved = cache.match(values).tolist()
        reachable = state.reachable_list
        self.stats.method_lookups += len(reachable)
        level = vm.scenario.opt_level
        traced = self._traced(state)
        builds = 0
        for mid in reachable:
            if resolved[mid] >= 0:
                continue
            version, region = traced.compile(mid, values, level)
            resolved[mid] = cache.add(mid, region, version)
            builds += 1
        self.stats.method_builds += builds
        if state.preloaded:
            self.stats.plan_warm_hits += len(reachable) - builds
            self.stats.plan_recompiles += builds

        signature = tuple(resolved[mid] for mid in reachable)
        memo = state.reports.get(signature)
        if memo is not None:
            self.stats.report_hits += 1
            if not attach_params:
                return memo
            return replace(memo, params=params)
        self.stats.report_misses += 1

        counts = self._propagate(program, cache, resolved)
        invoked = np.flatnonzero(counts > 0.0)
        inv_entries = [resolved[mid] for mid in invoked.tolist()]

        # sequential left-to-right sum: bitwise-equal to the seed loop
        compile_cycles = sum(cache.compile_cycles_of(inv_entries), 0.0)
        inline_sites = cache.inline_counts_of(inv_entries)
        n_opt = len(invoked)

        code_sizes = cache.code_sizes_of(inv_entries)
        times = np.zeros(len(program), dtype=np.float64)
        times[invoked] = counts[invoked] * cache.cycles_per_invocation_of(inv_entries)

        sizes_dense = np.zeros(len(program), dtype=np.float64)
        sizes_dense[invoked] = code_sizes
        hot = hot_code_size(sizes_dense, times, vm.cost_model.hot_share_at_full)
        factor = pressure_factor(
            hot, vm.machine.icache_capacity, vm.machine.icache_miss_penalty
        )
        running = float(times.sum()) * factor
        installed = float(sum(code_sizes.tolist()))

        report = ExecutionReport(
            benchmark=program.name,
            scenario=vm.scenario.name,
            machine=vm.machine,
            params=params,
            running_cycles=running,
            compile_cycles=compile_cycles,
            first_iteration_exec_cycles=running,
            icache_factor=factor,
            hot_code_size=hot,
            installed_code_size=installed,
            methods_compiled_baseline=0,
            methods_compiled_opt=n_opt,
            inline_sites=inline_sites,
        )
        state.reports[signature] = report
        return report

    def _propagate(
        self, program: Program, cache: MethodPlanCache, resolved: List[int]
    ) -> np.ndarray:
        """Mirror of :func:`repro.jvm.runtime.propagate_invocations`.

        Bitwise-identical: each method's count is divided by the same
        geometric factor and each residual edge adds the same single
        product in the same order.  Accumulation runs on a plain Python
        list — the loop is scalar and data-dependent, where boxed
        ``np.float64`` arithmetic costs more than it saves.

        Top rung: when a compiled kernel backend is selected the row
        runs through :meth:`KernelBackend.opt_propagate_batch` as a
        one-row batch — the identical scalar op sequence in C, so the
        result is bitwise-equal to the Python loop below.  A kernel
        infrastructure failure degrades this accelerator to the Python
        loop permanently (``native_fallbacks``); a genuine
        missing-version :class:`SimulationError` propagates unchanged.
        """
        backend = self.native_backend()
        if backend is not None:
            try:
                offsets, callees, rates = cache.edge_csr()
                counts2d = backend.opt_propagate_batch(
                    np.asarray([resolved], dtype=np.int64),
                    program.entry_id,
                    cache.self_rate_column(),
                    offsets,
                    callees,
                    rates,
                    program_name=program.name,
                )
                self.stats.native_propagations += 1
                self.stats.native_rows += 1
                # copy: the kernel hands back a row of its reusable
                # scratch matrix
                return counts2d[0].copy()
            except SimulationError:
                raise
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                self.stats.native_fallbacks += 1
                self.disable_native()
        counts: List[float] = [0.0] * len(program)
        counts[program.entry_id] = 1.0
        self_rates = cache._self_rate
        all_edges = cache._edges
        for mid, c in enumerate(counts):
            if c <= 0.0:
                continue
            entry = resolved[mid]
            if entry < 0:
                raise SimulationError(
                    f"method {mid} of {program.name!r} is invoked but has no compiled version"
                )
            self_rate = self_rates[entry]
            if self_rate > 0.0:
                c = c / (1.0 - self_rate)
                counts[mid] = c
            callees, rates = all_edges[entry]
            for callee, rate in zip(callees, rates):
                counts[callee] += c * rate
        return np.array(counts, dtype=np.float64)

    # ------------------------------------------------------------------
    # Adapt scenario
    # ------------------------------------------------------------------
    def _ensure_skeleton(self, state: _ProgramState) -> None:
        if state.skeleton is not None:
            return
        skeleton = self.vm._aos.plan_promotions(state.program)
        state.skeleton = skeleton
        self.stats.adaptive_skeletons += 1

        state.key_mids = list(skeleton.promoted_method_ids)
        state.key_mids_array = np.array(state.key_mids, dtype=np.int64)
        invoked = np.array(sorted(skeleton.baseline_versions), dtype=np.int64)
        state.invoked = invoked
        state.invoked_pos = {int(mid): i for i, mid in enumerate(invoked)}
        versions = [skeleton.baseline_versions[int(mid)] for mid in invoked]
        state.baseline_cpi = np.array(
            [v.cycles_per_invocation for v in versions], dtype=np.float64
        )
        state.baseline_sizes = np.array(
            [v.code_size for v in versions], dtype=np.float64
        )
        state.baseline_inline = np.array(
            [v.inline_count for v in versions], dtype=np.int64
        )
        state.baseline_info = {
            int(mid): _residual_info(v) for mid, v in zip(invoked, versions)
        }
        state.promotion_level = dict(skeleton.promotions)
        # promoted methods are by construction invoked (the controller
        # only promotes profiled-hot methods), so every key mid has a
        # position in the invoked column order
        state.promoted_pos = np.array(
            [state.invoked_pos[mid] for mid in state.key_mids], dtype=np.int64
        )

    def _run_adaptive(
        self,
        program: Program,
        params: InliningParameters,
        attach_params: bool = True,
    ):
        vm = self.vm
        state = self._state_for(program)
        self._ensure_skeleton(state)
        skeleton = state.skeleton
        cache = state.cache
        values = params.as_tuple()

        # only the promoted methods are ever read under Adapt, so the
        # bound check is restricted to their entries and the result is
        # a promotions-sized array, not a whole-program copy
        resolved = cache.match_methods(values, state.key_mids).tolist()
        self.stats.method_lookups += len(skeleton.promotions)
        use_hot = vm.scenario.uses_hot_callsite_heuristic
        traced = self._traced(state)
        builds = 0
        for i, (mid, level) in enumerate(skeleton.promotions):
            if resolved[i] >= 0:
                continue
            version, region = traced.compile(
                mid,
                values,
                level,
                hot_sites=skeleton.hot_sites,
                use_hot_heuristic=use_hot,
            )
            resolved[i] = cache.add(mid, region, version)
            builds += 1
        self.stats.method_builds += builds
        if state.preloaded:
            self.stats.plan_warm_hits += len(skeleton.promotions) - builds
            self.stats.plan_recompiles += builds

        signature = tuple(resolved)
        memo = state.reports.get(signature)
        if memo is not None:
            self.stats.report_hits += 1
            if not attach_params:
                return memo
            return replace(memo, params=params)
        self.stats.report_misses += 1

        promoted_entries = dict(zip(state.key_mids, resolved))
        report = self._account_adaptive(state, promoted_entries, params)
        state.reports[signature] = report
        return report

    def _account_adaptive(
        self,
        state: _ProgramState,
        promoted_entries: Dict[int, int],
        params: InliningParameters,
    ):
        """Adaptive-run accounting for one resolved plan signature.

        Shared by the serial run path and the generation-batch layer
        (:mod:`repro.perf.batch`), which calls it once per deduplicated
        signature.
        """
        from repro.jvm.runtime import ExecutionReport

        vm = self.vm
        program = state.program
        skeleton = state.skeleton
        cache = state.cache
        counts = self._propagate_adaptive(program, state, promoted_entries)

        # final-version columns: baseline values overwritten at promoted
        # positions, in the reference's final_versions iteration order
        cpi = state.baseline_cpi.copy()
        sizes_col = state.baseline_sizes.copy()
        inline_col = state.baseline_inline.copy()
        for mid, entry in promoted_entries.items():
            pos = state.invoked_pos[mid]
            version = cache.version(entry)
            cpi[pos] = version.cycles_per_invocation
            sizes_col[pos] = version.code_size
            inline_col[pos] = version.inline_count

        invoked = state.invoked
        live = counts[invoked] > 0.0
        live_mids = invoked[live]
        times = np.zeros(len(program), dtype=np.float64)
        times[live_mids] = counts[live_mids] * cpi[live]
        sizes_dense = np.zeros(len(program), dtype=np.float64)
        sizes_dense[live_mids] = sizes_col[live]
        inline_sites = int(inline_col[live].sum())

        hot = hot_code_size(sizes_dense, times, vm.cost_model.hot_share_at_full)
        factor = pressure_factor(
            hot, vm.machine.icache_capacity, vm.machine.icache_miss_penalty
        )
        running_raw = float(times.sum())
        running = running_raw * factor
        installed = float(sum(sizes_col[live].tolist()))

        compile_cycles = skeleton.baseline_compile_cycles
        for mid, _ in skeleton.promotions:
            compile_cycles += cache.version(promoted_entries[mid]).compile_cycles

        warmup = vm.cost_model.adaptive_mix_fraction
        baseline_running = skeleton.profile.total_time
        first_iter = warmup * baseline_running + (1.0 - warmup) * running
        first_iter *= 1.0 + vm.cost_model.sampling_overhead

        return ExecutionReport(
            benchmark=program.name,
            scenario=vm.scenario.name,
            machine=vm.machine,
            params=params,
            running_cycles=running,
            compile_cycles=compile_cycles,
            first_iteration_exec_cycles=first_iter,
            icache_factor=factor,
            hot_code_size=hot,
            installed_code_size=installed,
            methods_compiled_baseline=len(skeleton.baseline_versions),
            methods_compiled_opt=len(skeleton.promotions),
            inline_sites=inline_sites,
        )

    def _propagate_adaptive(
        self,
        program: Program,
        state: _ProgramState,
        promoted_entries: Dict[int, int],
    ) -> np.ndarray:
        cache = state.cache
        baseline_info = state.baseline_info
        counts: List[float] = [0.0] * len(program)
        counts[program.entry_id] = 1.0
        for mid, c in enumerate(counts):
            if c <= 0.0:
                continue
            entry = promoted_entries.get(mid)
            if entry is not None:
                self_rate = cache.self_rate(entry)
                callees, rates = cache.edges(entry)
            else:
                info = baseline_info.get(mid)
                if info is None:
                    raise SimulationError(
                        f"method {mid} of {program.name!r} is invoked but has no compiled version"
                    )
                self_rate, callees, rates = info
            if self_rate > 0.0:
                c = c / (1.0 - self_rate)
                counts[mid] = c
            # baseline code keeps one residual edge per call *site*, so
            # a caller may list the same callee more than once; the
            # sequential loop accumulates duplicates in edge order
            # exactly like the reference
            for callee, rate in zip(callees, rates):
                counts[callee] += c * rate
        return np.array(counts, dtype=np.float64)


def _residual_info(
    version: CompiledMethod,
) -> Tuple[float, List[int], List[float]]:
    callees = [c for c, _ in version.residual_forward]
    rates = [r for _, r in version.residual_forward]
    return version.residual_self_rate, callees, rates
