"""Generation-batched evaluation: cross-genome dedup + matrix accounting.

The GA hands the fitness layer a whole generation of genomes at once,
and :class:`~repro.perf.engine.EvaluationAccelerator` already resolves
each genome to a *plan signature* — the tuple of region-cache entries
serving each method.  This module exploits the batch dimension on top
of that:

* **batched resolution** — one broadcast bound check
  (:meth:`~repro.perf.plancache.MethodPlanCache.match_many`) resolves
  the entire generation against every cached region at once, instead of
  one vectorized lookup per genome;
* **cross-genome dedup** — the resolved entry rows are partitioned by
  signature (``np.unique`` over the key columns); exactly one
  representative per equivalence class is simulated, and its
  :class:`~repro.jvm.runtime.ExecutionReport` fans out to the rest of
  the class bitwise-identically (``AcceleratorStats.batch_dedup_hits``
  counts the fan-outs);
* **matrix accounting** — the residual representatives of the *Opt*
  scenario are accounted together as ``(representatives, methods)``
  NumPy matrices: column gathers, the times/sizes fill, the cumulative
  compile-cycle and installed-size reductions and the I-cache pressure
  factors all run across the batch dimension.  Reductions that the
  reference accumulates sequentially use ``cumsum`` (also strictly
  sequential) over dense rows, so every float result stays bitwise
  equal to the serial memoized path.  *Adapt* representatives go
  through :class:`repro.perf.adaptivekernel.AdaptiveBatchKernel`, which
  stacks them as columns of one matrix propagation and batches the
  final-version accounting and the cold-path compilation the same way
  (``use_adaptive_kernel=False`` falls back to the accelerator's
  per-signature :meth:`EvaluationAccelerator._account_adaptive`).

The batch layer shares the accelerator's caches and report memo, so
serial ``vm.run`` calls and batched generations see (and populate) the
same state.
"""

from __future__ import annotations

import logging
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.jvm.callgraph import Program
from repro.jvm.inlining import InliningParameters
from repro.telemetry import emit as telemetry_emit, trace

__all__ = ["GenerationBatchEvaluator", "batched_cache_pressure"]

_log = logging.getLogger("repro.perf.batch")


def _fault_injector():
    """The process-wide fault injector, or None (test-only hook)."""
    from repro.resilience.faults import get_fault_injector

    return get_fault_injector()


def batched_cache_pressure(
    times: np.ndarray,
    sizes_dense: np.ndarray,
    cost_model,
    machine,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise code-cache pressure for a batch of accounted runs.

    *times* and *sizes_dense* are ``(representatives, methods)``;
    returns ``(totals, hots, factors)`` — per row the raw running-cycle
    total, the hot code size and the I-cache pressure factor, each
    bitwise equal to :func:`repro.jvm.codecache.hot_code_size` /
    :func:`~repro.jvm.codecache.pressure_factor` on that row alone
    (row views of a C-contiguous matrix sum exactly like the serial
    1-D arrays).  Shared by the Opt batch accounting and the adaptive
    kernel.
    """
    n_reps = len(times)
    hot_share = cost_model.hot_share_at_full
    capacity = machine.icache_capacity
    penalty = machine.icache_miss_penalty
    totals = np.empty(n_reps, dtype=np.float64)
    hots = np.empty(n_reps, dtype=np.float64)
    for r in range(n_reps):
        row_times = times[r]
        total = float(row_times.sum())
        totals[r] = total
        if total <= 0.0:
            hots[r] = 0.0
            continue
        weights = np.minimum((row_times / total) / hot_share, 1.0)
        hots[r] = float(np.dot(sizes_dense[r], weights))
    factors = np.ones(n_reps, dtype=np.float64)
    if penalty != 0.0:
        over = np.flatnonzero(hots > capacity)
        if len(over):
            overflow = hots[over] / capacity - 1.0
            factors[over] = 1.0 + penalty * overflow / (1.0 + overflow)
    return totals, hots, factors


class GenerationBatchEvaluator:
    """Evaluates whole generations of genomes through a memoizing VM.

    One instance wraps one :class:`~repro.jvm.runtime.VirtualMachine`
    created with ``memoize=True`` (the default).  The central entry
    point is :meth:`run_generation`, whose reports are bitwise
    identical, field by field, to running every (genome, program) pair
    through ``vm.run`` serially.
    """

    def __init__(self, vm, use_adaptive_kernel: bool = True) -> None:
        accelerator = getattr(vm, "_accelerator", None)
        if accelerator is None:
            raise SimulationError(
                "generation batching requires a memoizing VirtualMachine "
                "(construct it with memoize=True)"
            )
        self.vm = vm
        self.accelerator = accelerator
        self._kernel = None
        if use_adaptive_kernel and vm.scenario.is_adaptive:
            from repro.perf.adaptivekernel import AdaptiveBatchKernel

            self._kernel = AdaptiveBatchKernel(vm, accelerator)

    # ------------------------------------------------------------------
    def run_generation(
        self,
        programs: Sequence[Program],
        params_list: Sequence[InliningParameters],
        attach_params: bool = True,
    ) -> List[List[object]]:
        """Run every genome over every program, batched per program.

        Returns genome-major nested lists: ``result[g][p]`` is the
        report of ``params_list[g]`` on ``programs[p]``.  With
        ``attach_params=False`` the per-genome ``dataclasses.replace``
        that stamps each report with its caller's params is skipped —
        deduplicated genomes then share one report object whose
        ``params`` field belongs to the class representative.  All
        other fields are unaffected; the fitness pipeline uses this
        mode because no metric reads ``params``.
        """
        reports: List[List[object]] = [[None] * len(programs) for _ in params_list]
        if not params_list:
            return reports
        with trace(
            "perf.batch.generation",
            genomes=len(params_list),
            programs=len(programs),
        ):
            self.accelerator.stats.batch_generations += 1
            values_matrix = np.array(
                [params.as_tuple() for params in params_list], dtype=np.int64
            )
            for j, program in enumerate(programs):
                self._run_program(
                    program, params_list, values_matrix, reports, j, attach_params
                )
        return reports

    # ------------------------------------------------------------------
    def _run_program(
        self,
        program: Program,
        params_list: Sequence[InliningParameters],
        values_matrix: np.ndarray,
        out: List[List[object]],
        column: int,
        attach_params: bool,
    ) -> None:
        acc = self.accelerator
        stats = acc.stats
        state = acc._state_for(program)
        adaptive = self.vm.scenario.is_adaptive
        if adaptive:
            acc._ensure_skeleton(state)
            key_mids = state.key_mids
        else:
            key_mids = state.reachable_list

        n_genomes = len(params_list)
        stats.runs += n_genomes
        stats.method_lookups += n_genomes * len(key_mids)

        builds_before = stats.method_builds
        resolved = self._resolve_batch(state, params_list, values_matrix, key_mids, adaptive)
        if state.preloaded:
            builds = stats.method_builds - builds_before
            stats.plan_warm_hits += n_genomes * len(key_mids) - builds
            stats.plan_recompiles += builds

        # partition the generation by plan signature over the key
        # columns; row bytes key the grouping (cheaper than a lexsort),
        # insertion order makes the first genome each class's
        # representative — exactly the serial evaluation order
        key_cols = np.ascontiguousarray(resolved[:, key_mids] if key_mids else resolved[:, :0])
        groups: Dict[bytes, List[int]] = {}
        for g in range(n_genomes):
            groups.setdefault(key_cols[g].tobytes(), []).append(g)

        # serve memoized signatures, collect the residual representatives
        class_reports: List[object] = []
        miss_reps: List[int] = []
        miss_slots: List[int] = []
        miss_signatures: List[Tuple[int, ...]] = []
        for slot, members in enumerate(groups.values()):
            rep = members[0]
            signature = tuple(key_cols[rep].tolist())
            memo = state.reports.get(signature)
            if memo is not None:
                stats.report_hits += len(members)
                class_reports.append(memo)
            else:
                stats.report_misses += 1
                stats.batch_dedup_hits += len(members) - 1
                miss_reps.append(rep)
                miss_slots.append(slot)
                miss_signatures.append(signature)
                class_reports.append(None)

        if miss_reps:
            rep_rows = resolved[miss_reps]
            rep_params = [params_list[rep] for rep in miss_reps]
            try:
                injector = _fault_injector()
                if injector is not None:
                    injector.maybe_raise("batch-kernel", key=program.name)
                if adaptive:
                    if self._kernel is not None and len(miss_reps) > 1:
                        fresh = self._kernel.account(state, rep_rows, rep_params)
                    else:
                        fresh = [
                            acc._account_adaptive(
                                state,
                                {mid: int(row[mid]) for mid in state.key_mids},
                                params,
                            )
                            for row, params in zip(rep_rows, rep_params)
                        ]
                else:
                    fresh = self._account_opt_batch(state, rep_rows, rep_params)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                # Graceful degradation: a batch/matrix-kernel failure
                # costs throughput, never correctness — re-evaluate the
                # representatives through the serial memoized path
                # (which itself falls back to run_reference if the
                # accelerator is at fault; see VirtualMachine.run).
                stats.degraded_batches += 1
                _log.warning(
                    "batched accounting of %s failed; degrading %d "
                    "representative(s) to the serial path",
                    program.name,
                    len(miss_reps),
                    exc_info=True,
                )
                telemetry_emit(
                    "perf.degraded_batch",
                    program=program.name,
                    error=type(exc).__name__,
                )
                fresh = [
                    self.vm.run(program, params_list[rep], attach_params=False)
                    for rep in miss_reps
                ]
            for slot, signature, report in zip(miss_slots, miss_signatures, fresh):
                state.reports[signature] = report
                class_reports[slot] = report

        for slot, members in enumerate(groups.values()):
            report = class_reports[slot]
            if attach_params:
                for g in members:
                    out[g][column] = replace(report, params=params_list[g])
            else:
                for g in members:
                    out[g][column] = report

    # ------------------------------------------------------------------
    def _resolve_batch(
        self,
        state,
        params_list: Sequence[InliningParameters],
        values_matrix: np.ndarray,
        key_mids: Sequence[int],
        adaptive: bool,
    ) -> np.ndarray:
        """Resolve all genomes to entry rows, compiling what's missing.

        The broadcast match covers everything already cached; genomes
        with unresolved methods are then visited in population order —
        a compile triggered by an earlier genome can cover a later one,
        so each such genome re-matches against the by-then-current
        cache before compiling the remainder (exactly the serial
        ordering).
        """
        acc = self.accelerator
        cache = state.cache
        resolved = cache.match_many(values_matrix)
        if not key_mids:
            return resolved
        missing_rows = np.flatnonzero((resolved[:, key_mids] < 0).any(axis=1))
        if not len(missing_rows):
            return resolved

        if adaptive and self._kernel is not None:
            # grouped cold path: one traced plan per distinct region,
            # fanned out to every genome the region covers
            self._kernel.resolve_missing(
                state, params_list, values_matrix, resolved, missing_rows
            )
            return resolved

        traced = acc._traced(state)
        if adaptive:
            skeleton = state.skeleton
            use_hot = self.vm.scenario.uses_hot_callsite_heuristic
        else:
            level = self.vm.scenario.opt_level
        builds = 0
        for g in missing_rows.tolist():
            values = params_list[g].as_tuple()
            row = cache.match(values)
            if adaptive:
                for mid, promo_level in skeleton.promotions:
                    if row[mid] >= 0:
                        continue
                    version, region = traced.compile(
                        mid,
                        values,
                        promo_level,
                        hot_sites=skeleton.hot_sites,
                        use_hot_heuristic=use_hot,
                    )
                    row[mid] = cache.add(mid, region, version)
                    builds += 1
            else:
                for mid in key_mids:
                    if row[mid] >= 0:
                        continue
                    version, region = traced.compile(mid, values, level)
                    row[mid] = cache.add(mid, region, version)
                    builds += 1
            resolved[g] = row
        acc.stats.method_builds += builds
        return resolved

    # ------------------------------------------------------------------
    def _propagate_opt_batch(self, state, rep_rows: np.ndarray) -> np.ndarray:
        """Invocation counts of the Opt miss representatives.

        Top rung: the compiled kernel backend (:mod:`repro.perf.native`)
        runs the propagation loop over all rows in one cache-blocked
        call (:meth:`KernelBackend.opt_propagate_blocked`), bitwise
        equal to the per-row reference loop.  A kernel *infrastructure*
        failure falls back to the reference loop and disables the
        backend for this accelerator (``native_fallbacks``); a genuine
        missing-version :class:`SimulationError` propagates exactly as
        the reference would raise it.
        """
        acc = self.accelerator
        program = state.program
        cache = state.cache
        backend = acc.native_backend()
        if backend is not None:
            try:
                offsets, callees, rates = cache.edge_csr()
                counts = backend.opt_propagate_blocked(
                    rep_rows,
                    program.entry_id,
                    cache.self_rate_column(),
                    offsets,
                    callees,
                    rates,
                    program_name=program.name,
                )
                acc.stats.native_propagations += 1
                acc.stats.native_rows += len(rep_rows)
                return counts
            except SimulationError:
                raise
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                acc.stats.native_fallbacks += 1
                acc.disable_native()
                _log.warning(
                    "compiled kernel failed on %s; degrading this "
                    "accelerator to the numpy path",
                    program.name,
                    exc_info=True,
                )
        counts = np.empty((len(rep_rows), len(program)), dtype=np.float64)
        for r in range(len(rep_rows)):
            counts[r] = acc._propagate(program, cache, rep_rows[r].tolist())
        return counts

    # ------------------------------------------------------------------
    def _account_opt_batch(
        self,
        state,
        rep_rows: np.ndarray,
        rep_params: Sequence[InliningParameters],
    ) -> List[object]:
        """Matrix accounting of the Opt scenario's miss representatives.

        Mirrors :meth:`EvaluationAccelerator._run_optimizing`'s
        accounting with the representative dimension vectorized.
        Bitwise notes: the data-dependent invocation propagation stays
        the scalar reference loop per row; elementwise matrix ops are
        per-element identical to the serial scalars; the sequential
        left-to-right Python sums of the reference become ``cumsum``
        over dense rows (strictly sequential, and the interleaved 0.0
        entries of never-invoked methods are exact no-ops on the
        positive partial sums); full-row ``sum``/``dot`` reductions run
        on contiguous row views, the same call the serial path makes.
        """
        from repro.jvm.runtime import ExecutionReport

        acc = self.accelerator
        vm = self.vm
        program = state.program
        cache = state.cache
        n_methods = len(program)
        n_reps = len(rep_rows)
        cc_col, size_col, cpi_col, inline_col = cache.column_arrays()

        counts = self._propagate_opt_batch(state, rep_rows)
        invoked = counts > 0.0
        entries = np.maximum(rep_rows, 0)

        times = np.where(invoked, counts * cpi_col[entries], 0.0)
        sizes_dense = np.where(invoked, size_col[entries], 0.0)
        compile_cycles = np.where(invoked, cc_col[entries], 0.0).cumsum(axis=1)[:, -1]
        installed = sizes_dense.cumsum(axis=1)[:, -1]
        inline_sites = np.where(invoked, inline_col[entries], 0).sum(axis=1)
        n_opt = invoked.sum(axis=1)

        totals, hots, factors = batched_cache_pressure(
            times, sizes_dense, vm.cost_model, vm.machine
        )
        running = totals * factors

        reports = []
        for r in range(n_reps):
            reports.append(
                ExecutionReport(
                    benchmark=program.name,
                    scenario=vm.scenario.name,
                    machine=vm.machine,
                    params=rep_params[r],
                    running_cycles=float(running[r]),
                    compile_cycles=float(compile_cycles[r]),
                    first_iteration_exec_cycles=float(running[r]),
                    icache_factor=float(factors[r]),
                    hot_code_size=float(hots[r]),
                    installed_code_size=float(installed[r]),
                    methods_compiled_baseline=0,
                    methods_compiled_opt=int(n_opt[r]),
                    inline_sites=int(inline_sites[r]),
                )
            )
        return reports
