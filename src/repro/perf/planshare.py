"""Campaign-wide sharing of compiled plan caches.

PR 6 moved workloads and genomes into shared memory, but every campaign
worker still recompiled the same inline plans from scratch: plan
expansion (``TracedCompiler.compile``) dominates the accelerated leg on
cold caches, and a campaign grid runs the identical (program, machine,
scenario) cells in every worker process.  This module makes the
compiled plan state a campaign-wide resource:

* the coordinator owns a :class:`~repro.perf.shm.PlanArchive` and
  publishes every program's
  :class:`~repro.perf.plancache.MethodPlanCache` (exported as flat
  arrays) under a *plan key* — the program fingerprint plus the full
  ``repr`` of the machine model, scenario, and cost model, i.e. exactly
  the inputs plan expansion depends on;
* workers hold a process-global :class:`PlanShareClient`; when an
  :class:`~repro.perf.engine.EvaluationAccelerator` first sees a
  program it asks the client for that key's arrays and preloads them
  into its private cache, then compiles only what the archive lacks;
* as workers return *new* compiled entries with their results, the
  coordinator's :class:`PlanSharePublisher` merges them (deduplicated
  by region — regions of one method are disjoint across distinct
  plans, so an already-present region *is* the same version) and
  republishes a new epoch for later tasks to warm-start from.

Preloaded entries are byte-for-byte reconstructions of the versions
that produced them (see ``MethodPlanCache.export_arrays``), so a
warm-started worker resolves, propagates, and accounts
bitwise-identically to a cold-started one — the parity suite asserts
this over randomized sweeps.

Degradation, as everywhere in the perf stack: any shm failure —
platform without shared memory, archive vanished mid-campaign, torn
snapshot that never settles — permanently degrades the failing side to
its private cache.  Plan sharing is a throughput optimization, never a
correctness dependency.  The ``REPRO_PLAN_SHARE`` environment knob
(``auto``/``on``/``off``, mirroring ``REPRO_KERNEL_BACKEND``) forces
the policy for a whole process tree.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, Optional

import numpy as np

from repro.perf.plancache import MethodPlanCache
from repro.perf.shm import (
    PlanArchive,
    PlanArchiveReader,
    shared_memory_supported,
)

__all__ = [
    "ENV_PLAN_SHARE",
    "plan_sharing_enabled",
    "plan_key",
    "PlanShareClient",
    "PlanSharePublisher",
    "ensure_client",
    "get_client",
    "clear_client",
    "export_accelerator_plans",
    "persist_plan_exports",
    "load_plan_exports",
]

_log = logging.getLogger("repro.perf.planshare")

#: environment override: ``off`` disables plan sharing everywhere,
#: ``on`` requests it (still needs working shared memory), ``auto``
#: (default) enables it wherever shared memory works
ENV_PLAN_SHARE = "REPRO_PLAN_SHARE"


def plan_sharing_enabled() -> bool:
    """Whether this process should publish/attach shared plan caches."""
    value = os.environ.get(ENV_PLAN_SHARE, "auto").strip().lower()
    if value in ("off", "0", "no", "none", "disabled"):
        return False
    return shared_memory_supported()


def plan_key(program, machine, scenario, cost_model) -> str:
    """The archive key of one program's plan cache.

    Plan expansion depends on exactly these inputs, so the key embeds
    all of them: two cells that share a key compile identical versions
    for identical parameter vectors, which is what makes cross-process
    reuse sound.
    """
    return "|".join(
        [program.fingerprint(), repr(machine), repr(scenario), repr(cost_model)]
    )


class PlanShareClient:
    """Worker-side access to the campaign's published plan caches.

    Lazily attaches the archive on first use and re-snapshots on every
    lookup (cheap when the epoch is unchanged — the reader caches the
    parsed mapping per epoch).  Any failure marks the client dead
    permanently: accelerators then preload nothing and compile
    privately, which is always correct.
    """

    def __init__(self, base: str) -> None:
        self.base = base
        self._reader: Optional[PlanArchiveReader] = None
        self._dead = False

    @property
    def dead(self) -> bool:
        return self._dead

    def arrays_for(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The newest published arrays for *key*, or None."""
        if self._dead:
            return None
        try:
            if self._reader is None:
                self._reader = PlanArchiveReader.attach(self.base)
            _, exports = self._reader.snapshot()
            return exports.get(key)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._dead = True
            _log.debug("plan-share client degraded: %s", exc)
            try:
                if self._reader is not None:
                    self._reader.close()
            except Exception:
                pass
            self._reader = None
            return None

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except Exception:  # pragma: no cover - defensive
                pass
            self._reader = None


class PlanSharePublisher:
    """Coordinator-side merge-and-republish of worker plan exports.

    Holds one merged :class:`MethodPlanCache` per plan key; worker
    exports merge into it with region-level dedup, and a republish
    writes a fresh archive epoch only when the merge actually added
    entries.  A publish failure degrades the publisher permanently (the
    already-published epoch stays attachable).

    With *persist_dir* the merged exports also live on disk
    (``plan-*.npz``, atomic writes): the publisher loads whatever a
    previous coordinator saved before its first publish — so a brand
    new process warm-starts its campaign's compiled plans from the
    store tier — and saves the merged state on every republish.
    Persistence is best-effort both ways; any failure leaves the
    in-memory protocol untouched.
    """

    def __init__(
        self, name: Optional[str] = None, persist_dir: Optional[str] = None
    ) -> None:
        self.archive = PlanArchive.create(name)
        self._caches: Dict[str, MethodPlanCache] = {}
        self._dirty = False
        self._dead = False
        self.persist_dir = persist_dir
        if persist_dir is not None:
            try:
                self.merge(load_plan_exports(persist_dir))
                self.publish_if_dirty()
            except Exception as exc:  # pragma: no cover - defensive
                _log.debug("plan persistence preload failed: %s", exc)

    @property
    def base(self) -> str:
        return self.archive.base

    @property
    def dead(self) -> bool:
        return self._dead

    def merge(self, exports: Optional[Dict[str, Dict[str, np.ndarray]]]) -> int:
        """Fold worker *exports* into the merged caches; entries added."""
        if not exports or self._dead:
            return 0
        added = 0
        try:
            for key, arrays in exports.items():
                cache = self._caches.get(key)
                if cache is None:
                    cache = MethodPlanCache(int(arrays["n_methods"][0]))
                    self._caches[key] = cache
                added += cache.load_arrays(arrays)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._dead = True
            _log.debug("plan-share publisher degraded on merge: %s", exc)
            return added
        if added:
            self._dirty = True
        return added

    def publish_if_dirty(self) -> Optional[int]:
        """Republish a new epoch when the merge grew; returns the epoch."""
        if self._dead or not self._dirty:
            return None
        try:
            epoch = self.archive.publish(
                {key: cache.export_arrays() for key, cache in self._caches.items()}
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._dead = True
            _log.debug("plan-share publisher degraded on publish: %s", exc)
            return None
        self._dirty = False
        if self.persist_dir is not None:
            try:
                persist_plan_exports(
                    self.persist_dir,
                    {
                        key: cache.export_arrays()
                        for key, cache in self._caches.items()
                    },
                )
            except Exception as exc:  # pragma: no cover - full disk etc.
                _log.debug("plan persistence save failed: %s", exc)
        return epoch

    def unlink(self) -> None:
        try:
            self.archive.unlink()
        except Exception:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# process-global client (what EvaluationAccelerator preloads from)
# ----------------------------------------------------------------------
_CLIENT: Optional[PlanShareClient] = None


def ensure_client(base: str) -> Optional[PlanShareClient]:
    """Install (or reuse) the process-global client for *base*.

    Idempotent per archive name — campaign workers call this once per
    task with the payload's archive name.  Returns None when plan
    sharing is disabled by policy.
    """
    global _CLIENT
    if not plan_sharing_enabled():
        return None
    if _CLIENT is not None and _CLIENT.base == base:
        return _CLIENT
    if _CLIENT is not None:
        _CLIENT.close()
    _CLIENT = PlanShareClient(base)
    return _CLIENT


def get_client() -> Optional[PlanShareClient]:
    """The process-global client, if one is installed."""
    return _CLIENT


def clear_client() -> None:
    """Drop the process-global client (tests and teardown)."""
    global _CLIENT
    if _CLIENT is not None:
        _CLIENT.close()
    _CLIENT = None


def persist_plan_exports(
    directory: str, exports: Dict[str, Dict[str, np.ndarray]]
) -> int:
    """Save *exports* under *directory* as one ``plan-<hash>.npz`` each.

    The plan key (arbitrary text) travels inside the file as a uint8
    array; the filename is its hash.  Writes are atomic
    (temp + ``os.replace``), so readers never see a torn archive.
    Returns the number of files written.
    """
    import hashlib

    os.makedirs(directory, exist_ok=True)
    saved = 0
    for key, arrays in exports.items():
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
        path = os.path.join(directory, f"plan-{digest}.npz")
        payload = dict(arrays)
        payload["__key__"] = np.frombuffer(
            key.encode("utf-8"), dtype=np.uint8
        ).copy()
        tmp = path + f".tmp-{os.getpid()}"
        with open(tmp, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        saved += 1
    return saved


def load_plan_exports(directory: str) -> Dict[str, Dict[str, np.ndarray]]:
    """Inverse of :func:`persist_plan_exports` (missing dir -> empty).

    Unreadable files are skipped: persistence is a warm-start source,
    never a correctness dependency.
    """
    exports: Dict[str, Dict[str, np.ndarray]] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return exports
    for name in names:
        if not (name.startswith("plan-") and name.endswith(".npz")):
            continue
        path = os.path.join(directory, name)
        try:
            with np.load(path) as data:
                key = bytes(data["__key__"]).decode("utf-8")
                exports[key] = {
                    field: data[field].copy()
                    for field in data.files
                    if field != "__key__"
                }
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            _log.debug("skipped unreadable plan export %s: %s", path, exc)
    return exports


def export_accelerator_plans(accelerator) -> Dict[str, Dict[str, np.ndarray]]:
    """Every non-empty plan cache of *accelerator*, keyed for the archive."""
    vm = accelerator.vm
    exports: Dict[str, Dict[str, np.ndarray]] = {}
    for state in accelerator._states.values():
        if not len(state.cache):
            continue
        key = plan_key(state.program, vm.machine, vm.scenario, vm.cost_model)
        exports[key] = state.cache.export_arrays()
    return exports
