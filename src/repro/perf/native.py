"""Compiled kernel backend: the top rung of the degradation ladder.

The accounting hot path of the accelerated evaluator spends most of a
memo-cleared generation in two pure-Python scalar loops — the Opt
batch's per-representative invocation propagation
(:meth:`EvaluationAccelerator._propagate`) and the adaptive kernel's
per-column propagation chains.  This module compiles those loops and
selects an implementation at runtime through the graceful-degradation
ladder the rest of the perf stack already follows::

    compiled (numba, else a cc-built C extension) -> numpy -> serial
    memoized -> reference

A missing compiler never breaks a run: resolution failures of any kind
yield ``None`` and the callers keep their NumPy/Python paths.  The
selected rung is announced once per process through the telemetry
layer (``perf.backend_selected`` event and the
``repro_backend_selected_total`` metric family).

**Bitwise identity is the contract**, exactly as for every other rung:
the compiled kernels replace only *scalar* loops whose operation order
is fully determined, where a C (or numba-jitted) double performs the
identical IEEE-754 operation sequence as the interpreter.  NumPy
reductions (``ndarray.sum``, ``np.dot``) are never reimplemented here —
their pairwise/BLAS accumulation order is an implementation detail the
repo must reproduce, so :func:`repro.perf.batch.batched_cache_pressure`
and every other reduction stay in NumPy regardless of the backend.

Selection is overridable with the ``REPRO_KERNEL_BACKEND`` environment
variable: ``auto`` (default), ``numba``, ``cext`` (force one compiled
rung; resolution still degrades to ``None`` when it is unavailable) or
``numpy`` (disable compiled kernels entirely — the CI leg without
numba pins this to prove clean degradation).

The C extension is built on demand — ``cc -O2 -fPIC -shared`` into a
per-user cache directory keyed by the source hash — and loaded through
:mod:`ctypes`; no build step, no install-time compilation, and a
container without a C compiler simply resolves to the numpy rung.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "ENV_BACKEND",
    "KernelBackend",
    "get_backend",
    "backend_for",
    "available_backends",
    "reset_backend_cache",
]

_log = logging.getLogger("repro.perf.native")

#: environment override for backend selection
ENV_BACKEND = "REPRO_KERNEL_BACKEND"

#: environment override for the compiled-kernel cache directory
ENV_CACHE = "REPRO_KERNEL_CACHE"

#: ladder order of the compiled rungs
_COMPILED_RUNGS = ("numba", "cext")

_MISSING_VERSION = (
    "method {mid} of {name!r} is invoked but has no compiled version"
)


def _kernel_source_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "_kernels.c")


def _cache_dir() -> str:
    override = os.environ.get(ENV_CACHE)
    if override:
        return override
    return os.path.join(
        tempfile.gettempdir(), f"repro-kernels-{os.getuid() if hasattr(os, 'getuid') else 'u'}"
    )


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _build_shared_object() -> Optional[str]:
    """Compile ``_kernels.c`` into the cache dir; return the .so path.

    The object name is keyed by the source hash, so editing the source
    invalidates stale builds; the compile goes to a temp file first and
    is published with an atomic ``os.replace`` (concurrent builders
    race benignly to the same bytes).  Any failure returns None.
    """
    source = _kernel_source_path()
    try:
        with open(source, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    digest = hashlib.sha256(blob).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        cmd = [compiler, "-O2", "-fPIC", "-shared", "-o", tmp, source]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            _log.info("kernel compile failed: %s", proc.stderr.strip())
            os.unlink(tmp)
            return None
        os.replace(tmp, so_path)
        return so_path
    except (OSError, subprocess.SubprocessError) as exc:
        _log.info("kernel compile failed: %s", exc)
        return None


class KernelBackend:
    """One resolved compiled implementation of the two kernels.

    ``name`` is the rung ("numba" or "cext").  Both entry points take
    contiguous arrays, run the compiled loop and raise the reference's
    :class:`~repro.errors.SimulationError` on a missing compiled
    version; any *infrastructure* failure (a bad load, an interface
    mismatch) surfaces as an ordinary exception that the callers catch
    to fall down the ladder.
    """

    #: target footprint of one representative block's method-major
    #: scratch — half a typical L2's worth of doubles, so a block's
    #: working set survives the walk over the program's cache entries
    BLOCK_TARGET_BYTES = 262144

    def __init__(
        self,
        name,
        opt_fn,
        adaptive_fn,
        opt_blocked_fn=None,
        adaptive_blocked_fn=None,
    ) -> None:
        self.name = name
        self._opt_fn = opt_fn
        self._adaptive_fn = adaptive_fn
        self._opt_blocked_fn = opt_blocked_fn
        self._adaptive_blocked_fn = adaptive_blocked_fn
        # per-method-count scratch pool for the counts output.  A
        # generation's counts matrix is ~1 MB — above glibc's mmap
        # threshold — so a fresh allocation per call costs an mmap plus
        # page faults inside the kernel's first touch, which can double
        # the kernel's apparent cost.  Callers (batch/adaptive
        # accounting) fully consume the matrix before the next call, so
        # handing back the same buffer is safe.
        self._scratch: dict = {}
        # (n_methods, block) method-major working matrices for the
        # blocked kernels, keyed by method count (the block width is a
        # pure function of it)
        self._block_pool: dict = {}

    def _counts_buffer(self, n_reps: int, n_methods: int) -> np.ndarray:
        buf = self._scratch.get(n_methods)
        if buf is None or buf.shape[0] < n_reps:
            buf = np.empty((n_reps, n_methods), dtype=np.float64)
            self._scratch[n_methods] = buf
        return buf[:n_reps]

    def block_width(self, n_methods: int) -> int:
        """Representatives per cache block for an *n_methods* program."""
        return max(1, self.BLOCK_TARGET_BYTES // (8 * max(1, n_methods)))

    def _block_scratch(self, n_methods: int, block: int) -> np.ndarray:
        buf = self._block_pool.get(n_methods)
        if buf is None or buf.shape[1] < block:
            buf = np.empty((n_methods, block), dtype=np.float64)
            self._block_pool[n_methods] = buf
        return buf

    # ------------------------------------------------------------------
    def opt_propagate_batch(
        self,
        resolved: np.ndarray,
        entry_id: int,
        self_rate: np.ndarray,
        edge_offsets: np.ndarray,
        edge_callees: np.ndarray,
        edge_rates: np.ndarray,
        program_name: str = "?",
    ) -> np.ndarray:
        """Invocation counts for a batch of Opt representative rows.

        Bitwise equal, row by row, to
        :meth:`EvaluationAccelerator._propagate` on that row alone.
        """
        resolved = np.ascontiguousarray(resolved, dtype=np.int64)
        n_reps, n_methods = resolved.shape
        counts = self._counts_buffer(n_reps, n_methods)
        err = self._opt_fn(
            n_reps,
            n_methods,
            int(entry_id),
            resolved,
            np.ascontiguousarray(self_rate, dtype=np.float64),
            np.ascontiguousarray(edge_offsets, dtype=np.int64),
            np.ascontiguousarray(edge_callees, dtype=np.int64),
            np.ascontiguousarray(edge_rates, dtype=np.float64),
            counts,
        )
        if err:
            mid = -int(err) - 1
            raise SimulationError(
                _MISSING_VERSION.format(mid=mid, name=program_name)
            )
        return counts

    def adaptive_propagate_matrix(
        self,
        entry_matrix: np.ndarray,
        entry_id: int,
        promoted_slot: np.ndarray,
        entry_self_rate: np.ndarray,
        entry_offsets: np.ndarray,
        entry_callees: np.ndarray,
        entry_rates: np.ndarray,
        base_present: np.ndarray,
        base_self_rate: np.ndarray,
        base_offsets: np.ndarray,
        base_callees: np.ndarray,
        base_rates: np.ndarray,
        program_name: str = "?",
    ) -> np.ndarray:
        """Invocation counts for a batch of Adapt representatives.

        Returns ``(n_reps, n_methods)``; row ``r`` is bitwise equal to
        :meth:`EvaluationAccelerator._propagate_adaptive` for
        representative ``r``.
        """
        entry_matrix = np.ascontiguousarray(entry_matrix, dtype=np.int64)
        n_reps, n_promoted = entry_matrix.shape
        n_methods = len(promoted_slot)
        counts = self._counts_buffer(n_reps, n_methods)
        err = self._adaptive_fn(
            n_reps,
            n_methods,
            int(entry_id),
            n_promoted,
            entry_matrix,
            np.ascontiguousarray(promoted_slot, dtype=np.int64),
            np.ascontiguousarray(entry_self_rate, dtype=np.float64),
            np.ascontiguousarray(entry_offsets, dtype=np.int64),
            np.ascontiguousarray(entry_callees, dtype=np.int64),
            np.ascontiguousarray(entry_rates, dtype=np.float64),
            np.ascontiguousarray(base_present, dtype=np.uint8),
            np.ascontiguousarray(base_self_rate, dtype=np.float64),
            np.ascontiguousarray(base_offsets, dtype=np.int64),
            np.ascontiguousarray(base_callees, dtype=np.int64),
            np.ascontiguousarray(base_rates, dtype=np.float64),
            counts,
        )
        if err:
            mid = -int(err) - 1
            raise SimulationError(
                _MISSING_VERSION.format(mid=mid, name=program_name)
            )
        return counts

    # ------------------------------------------------------------------
    # cache-blocked entry points (multi-representative calls)
    # ------------------------------------------------------------------
    def opt_propagate_blocked(
        self,
        resolved: np.ndarray,
        entry_id: int,
        self_rate: np.ndarray,
        edge_offsets: np.ndarray,
        edge_callees: np.ndarray,
        edge_rates: np.ndarray,
        program_name: str = "?",
    ) -> np.ndarray:
        """Blocked twin of :meth:`opt_propagate_batch`.

        Same inputs, same bitwise-identical output rows; the kernel
        walks methods in the outer loop over blocks of representatives
        so each cache entry's CSR row is applied to a whole block while
        hot.  Falls back to the rep-major kernel when this rung has no
        blocked implementation.
        """
        if self._opt_blocked_fn is None:
            return self.opt_propagate_batch(
                resolved, entry_id, self_rate,
                edge_offsets, edge_callees, edge_rates,
                program_name=program_name,
            )
        resolved = np.ascontiguousarray(resolved, dtype=np.int64)
        n_reps, n_methods = resolved.shape
        block = self.block_width(n_methods)
        scratch = self._block_scratch(n_methods, block)
        counts = self._counts_buffer(n_reps, n_methods)
        err = self._opt_blocked_fn(
            n_reps,
            n_methods,
            int(entry_id),
            block,
            resolved,
            np.ascontiguousarray(self_rate, dtype=np.float64),
            np.ascontiguousarray(edge_offsets, dtype=np.int64),
            np.ascontiguousarray(edge_callees, dtype=np.int64),
            np.ascontiguousarray(edge_rates, dtype=np.float64),
            scratch,
            counts,
        )
        if err:
            mid = -int(err) - 1
            raise SimulationError(
                _MISSING_VERSION.format(mid=mid, name=program_name)
            )
        return counts

    def adaptive_propagate_blocked(
        self,
        entry_matrix: np.ndarray,
        entry_id: int,
        promoted_slot: np.ndarray,
        entry_self_rate: np.ndarray,
        entry_offsets: np.ndarray,
        entry_callees: np.ndarray,
        entry_rates: np.ndarray,
        base_present: np.ndarray,
        base_self_rate: np.ndarray,
        base_offsets: np.ndarray,
        base_callees: np.ndarray,
        base_rates: np.ndarray,
        program_name: str = "?",
    ) -> np.ndarray:
        """Blocked twin of :meth:`adaptive_propagate_matrix`."""
        if self._adaptive_blocked_fn is None:
            return self.adaptive_propagate_matrix(
                entry_matrix, entry_id, promoted_slot,
                entry_self_rate, entry_offsets, entry_callees, entry_rates,
                base_present, base_self_rate, base_offsets,
                base_callees, base_rates,
                program_name=program_name,
            )
        entry_matrix = np.ascontiguousarray(entry_matrix, dtype=np.int64)
        n_reps, n_promoted = entry_matrix.shape
        n_methods = len(promoted_slot)
        block = self.block_width(n_methods)
        scratch = self._block_scratch(n_methods, block)
        counts = self._counts_buffer(n_reps, n_methods)
        err = self._adaptive_blocked_fn(
            n_reps,
            n_methods,
            int(entry_id),
            n_promoted,
            block,
            entry_matrix,
            np.ascontiguousarray(promoted_slot, dtype=np.int64),
            np.ascontiguousarray(entry_self_rate, dtype=np.float64),
            np.ascontiguousarray(entry_offsets, dtype=np.int64),
            np.ascontiguousarray(entry_callees, dtype=np.int64),
            np.ascontiguousarray(entry_rates, dtype=np.float64),
            np.ascontiguousarray(base_present, dtype=np.uint8),
            np.ascontiguousarray(base_self_rate, dtype=np.float64),
            np.ascontiguousarray(base_offsets, dtype=np.int64),
            np.ascontiguousarray(base_callees, dtype=np.int64),
            np.ascontiguousarray(base_rates, dtype=np.float64),
            scratch,
            counts,
        )
        if err:
            mid = -int(err) - 1
            raise SimulationError(
                _MISSING_VERSION.format(mid=mid, name=program_name)
            )
        return counts


# ----------------------------------------------------------------------
# cext rung: ctypes over the cc-built shared object
# ----------------------------------------------------------------------
_I64 = ctypes.c_int64
_PI64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_PF64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_PU8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _load_cext() -> Optional[KernelBackend]:
    so_path = _build_shared_object()
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(so_path)
        opt = lib.repro_opt_propagate_batch
        opt.restype = _I64
        opt.argtypes = [_I64, _I64, _I64, _PI64, _PF64, _PI64, _PI64, _PF64, _PF64]
        adaptive = lib.repro_adaptive_propagate_matrix
        adaptive.restype = _I64
        adaptive.argtypes = [
            _I64, _I64, _I64, _I64,
            _PI64, _PI64,
            _PF64, _PI64, _PI64, _PF64,
            _PU8, _PF64, _PI64, _PI64, _PF64,
            _PF64,
        ]
        opt_blocked = lib.repro_opt_propagate_blocked
        opt_blocked.restype = _I64
        opt_blocked.argtypes = [
            _I64, _I64, _I64, _I64,
            _PI64, _PF64, _PI64, _PI64, _PF64,
            _PF64, _PF64,
        ]
        adaptive_blocked = lib.repro_adaptive_propagate_blocked
        adaptive_blocked.restype = _I64
        adaptive_blocked.argtypes = [
            _I64, _I64, _I64, _I64, _I64,
            _PI64, _PI64,
            _PF64, _PI64, _PI64, _PF64,
            _PU8, _PF64, _PI64, _PI64, _PF64,
            _PF64, _PF64,
        ]
    except (OSError, AttributeError) as exc:
        _log.info("kernel load failed: %s", exc)
        return None
    return KernelBackend("cext", opt, adaptive, opt_blocked, adaptive_blocked)


# ----------------------------------------------------------------------
# numba rung: jitted twins of the same loops
# ----------------------------------------------------------------------
def _load_numba() -> Optional[KernelBackend]:
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=True)
    def _opt(n_reps, n_methods, entry_id, resolved, self_rate,
             edge_offsets, edge_callees, edge_rates, counts):
        for r in range(n_reps):
            for m in range(n_methods):
                counts[r, m] = 0.0
            counts[r, entry_id] = 1.0
            for mid in range(n_methods):
                c = counts[r, mid]
                if c <= 0.0:
                    continue
                entry = resolved[r, mid]
                if entry < 0:
                    return -(mid + 1)
                sr = self_rate[entry]
                if sr > 0.0:
                    c = c / (1.0 - sr)
                    counts[r, mid] = c
                for k in range(edge_offsets[entry], edge_offsets[entry + 1]):
                    counts[r, edge_callees[k]] += c * edge_rates[k]
        return 0

    @numba.njit(cache=True)
    def _adaptive(n_reps, n_methods, entry_id, n_promoted, entry_matrix,
                  promoted_slot, entry_self_rate, entry_offsets,
                  entry_callees, entry_rates, base_present, base_self_rate,
                  base_offsets, base_callees, base_rates, counts):
        for r in range(n_reps):
            for m in range(n_methods):
                counts[r, m] = 0.0
            counts[r, entry_id] = 1.0
            for mid in range(n_methods):
                c = counts[r, mid]
                if c <= 0.0:
                    continue
                slot = promoted_slot[mid]
                if slot >= 0:
                    e = entry_matrix[r, slot]
                    if e < 0:
                        return -(mid + 1)
                    sr = entry_self_rate[e]
                    lo = entry_offsets[e]
                    hi = entry_offsets[e + 1]
                    promoted = True
                else:
                    if base_present[mid] == 0:
                        return -(mid + 1)
                    sr = base_self_rate[mid]
                    lo = base_offsets[mid]
                    hi = base_offsets[mid + 1]
                    promoted = False
                if sr > 0.0:
                    c = c / (1.0 - sr)
                    counts[r, mid] = c
                if promoted:
                    for k in range(lo, hi):
                        counts[r, entry_callees[k]] += c * entry_rates[k]
                else:
                    for k in range(lo, hi):
                        counts[r, base_callees[k]] += c * base_rates[k]
        return 0

    @numba.njit(cache=True)
    def _opt_blocked(n_reps, n_methods, entry_id, block, resolved,
                     self_rate, edge_offsets, edge_callees, edge_rates,
                     scratch, counts):
        for b0 in range(0, n_reps, block):
            bw = min(block, n_reps - b0)
            for m in range(n_methods):
                for r in range(bw):
                    scratch[m, r] = 0.0
            for r in range(bw):
                scratch[entry_id, r] = 1.0
            for mid in range(n_methods):
                for r in range(bw):
                    c = scratch[mid, r]
                    if c <= 0.0:
                        continue
                    entry = resolved[b0 + r, mid]
                    if entry < 0:
                        return -(mid + 1)
                    sr = self_rate[entry]
                    if sr > 0.0:
                        c = c / (1.0 - sr)
                        scratch[mid, r] = c
                    for k in range(edge_offsets[entry], edge_offsets[entry + 1]):
                        scratch[edge_callees[k], r] += c * edge_rates[k]
            for r in range(bw):
                for m in range(n_methods):
                    counts[b0 + r, m] = scratch[m, r]
        return 0

    @numba.njit(cache=True)
    def _adaptive_blocked(n_reps, n_methods, entry_id, n_promoted, block,
                          entry_matrix, promoted_slot, entry_self_rate,
                          entry_offsets, entry_callees, entry_rates,
                          base_present, base_self_rate, base_offsets,
                          base_callees, base_rates, scratch, counts):
        for b0 in range(0, n_reps, block):
            bw = min(block, n_reps - b0)
            for m in range(n_methods):
                for r in range(bw):
                    scratch[m, r] = 0.0
            for r in range(bw):
                scratch[entry_id, r] = 1.0
            for mid in range(n_methods):
                slot = promoted_slot[mid]
                for r in range(bw):
                    c = scratch[mid, r]
                    if c <= 0.0:
                        continue
                    if slot >= 0:
                        e = entry_matrix[b0 + r, slot]
                        if e < 0:
                            return -(mid + 1)
                        sr = entry_self_rate[e]
                        lo = entry_offsets[e]
                        hi = entry_offsets[e + 1]
                        promoted = True
                    else:
                        if base_present[mid] == 0:
                            return -(mid + 1)
                        sr = base_self_rate[mid]
                        lo = base_offsets[mid]
                        hi = base_offsets[mid + 1]
                        promoted = False
                    if sr > 0.0:
                        c = c / (1.0 - sr)
                        scratch[mid, r] = c
                    if promoted:
                        for k in range(lo, hi):
                            scratch[entry_callees[k], r] += c * entry_rates[k]
                    else:
                        for k in range(lo, hi):
                            scratch[base_callees[k], r] += c * base_rates[k]
            for r in range(bw):
                for m in range(n_methods):
                    counts[b0 + r, m] = scratch[m, r]
        return 0

    def opt_fn(n_reps, n_methods, entry_id, resolved, self_rate,
               edge_offsets, edge_callees, edge_rates, counts):
        return _opt(n_reps, n_methods, entry_id, resolved, self_rate,
                    edge_offsets, edge_callees, edge_rates, counts)

    def adaptive_fn(*args):
        return _adaptive(*args)

    def opt_blocked_fn(*args):
        return _opt_blocked(*args)

    def adaptive_blocked_fn(*args):
        return _adaptive_blocked(*args)

    return KernelBackend(
        "numba", opt_fn, adaptive_fn, opt_blocked_fn, adaptive_blocked_fn
    )


_LOADERS = {"numba": _load_numba, "cext": _load_cext}

#: per-process resolution cache: {rung: backend-or-None}
_RUNG_CACHE: dict = {}

#: the resolved process-wide backend; _UNSET until first get_backend()
_UNSET = object()
_SELECTED = _UNSET


def backend_for(name: str) -> Optional[KernelBackend]:
    """Resolve one specific rung (tests and benchmarks pin with this).

    Returns None when the rung is unavailable; never emits telemetry
    and never mutates the process-wide selection.
    """
    if name not in _LOADERS:
        return None
    if name not in _RUNG_CACHE:
        try:
            _RUNG_CACHE[name] = _LOADERS[name]()
        except Exception as exc:  # resolution must never break a run
            _log.info("backend %s failed to resolve: %s", name, exc)
            _RUNG_CACHE[name] = None
    return _RUNG_CACHE[name]


def available_backends() -> list:
    """Names of the compiled rungs that resolve on this host."""
    return [name for name in _COMPILED_RUNGS if backend_for(name) is not None]


def _announce(name: str) -> None:
    """One-time telemetry for the selected rung (no-op when off)."""
    try:
        from repro.telemetry import emit, get_session

        emit("perf.backend_selected", backend=name)
        session = get_session()
        if session is not None:
            session.registry.counter(
                "repro_backend_selected_total", backend=name
            ).inc()
    except Exception:  # pragma: no cover - telemetry must never break a run
        pass


def get_backend() -> Optional[KernelBackend]:
    """The process-wide compiled backend, or None (= numpy rung).

    Resolution order: ``REPRO_KERNEL_BACKEND`` override first, then
    numba, then the cc-built C extension.  Resolved once per process;
    the choice is announced through telemetry on first resolution.
    """
    global _SELECTED
    if _SELECTED is not _UNSET:
        return _SELECTED
    requested = os.environ.get(ENV_BACKEND, "auto").strip().lower()
    backend: Optional[KernelBackend] = None
    if requested in ("numpy", "off", "none"):
        backend = None
    elif requested in _LOADERS:
        backend = backend_for(requested)
    else:
        if requested != "auto":
            _log.warning(
                "unknown %s=%r; using auto", ENV_BACKEND, requested
            )
        for name in _COMPILED_RUNGS:
            backend = backend_for(name)
            if backend is not None:
                break
    _SELECTED = backend
    _announce(backend.name if backend is not None else "numpy")
    return backend


def reset_backend_cache() -> None:
    """Forget the resolved selection (tests re-resolve after env edits)."""
    global _SELECTED
    _SELECTED = _UNSET
    _RUNG_CACHE.clear()
