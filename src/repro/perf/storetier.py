"""Sharded, content-addressed evaluation-store tier.

The single-file :class:`~repro.perf.store.EvaluationStore` serializes
every append through one writer: campaign workers buffer records in
memory, ship them back with their results, and the coordinator replays
them — re-reading the whole JSONL file per merge — under single-writer
discipline.  That round-trip is the storage ceiling for running many
concurrent campaigns against one accumulated body of evaluations.

This module promotes the store to a *tier*: a directory whose records
are content-addressed by ``(evaluation context, genome)`` and spread
over many files, so that

* **N writers append without coordination** — every process owns a
  private active shard (a JSONL file created with ``O_EXCL``) and
  appends durable records directly; there is no pending buffer and no
  coordinator funnel.  Record identity is the 64-bit
  :func:`record_key` hash of ``ctx|genome``; duplicate appends of the
  same record by racing writers are idempotent by construction (same
  key, same fitness — later loads collapse them).
* **cooled shards compact into indexed packs** — :meth:`StoreTier.compact`
  folds closed shards (and any previous packs) into one SQLite pack
  keyed by :func:`record_key`, bucketed by key hash, which loads a
  context's entries with one indexed query into an in-memory hash map
  (O(1) lookups thereafter) instead of parsing JSON line by line.
  Compaction is crash-safe: the pack is built under a temporary name,
  fsynced, and published with ``os.replace``; consumed shards are
  removed only afterwards, so a SIGKILL at *any* point leaves a tier
  that is fully readable (worst case: the same records exist in both a
  pack and a shard, which deduplicate on load) and repairable by simply
  compacting again.
* **results are reusable across campaigns** — records are keyed by the
  same evaluation-context fingerprint the single-file store uses
  (machine model, scenario, metric, cost model, parameter space,
  training-program content hashes), which never mentions a campaign or
  process: any later job with the same context answers its genomes from
  the tier at memory speed.  Each context's *workload profile* (the
  ingredients of the fingerprint plus the program content hashes) is
  registered under ``profiles/`` so a **new** job with a different
  workload can find its nearest neighbours
  (:meth:`StoreTier.nearest_profiles`) and seed its GA population from
  their best genomes (:meth:`StoreTier.warm_start_genomes`).

Layout of a tier directory::

    <root>/tier.json        tier marker + lifetime counters (atomic)
    <root>/shards/*.jsonl   active append shards, one per writer
    <root>/shards/*.lock    live-writer markers (pid; stale ones reaped)
    <root>/shards/*.bloom   per-shard context bloom sidecars (written at
                            writer close; cold lookups skip a shard's
                            replay when its bloom excludes the context)
    <root>/packs/*.sqlite   compacted packs (record_key -> record)
    <root>/profiles/*.json  workload profiles, one per context
    <root>/plans/*.npz      persisted compiled-plan archives
                            (see :mod:`repro.perf.planshare`)

Shard records use the exact line format of the legacy store
(``{"ctx":…, "genome":…, "fitness":…, "per":…}``), so migrating a
legacy file is a copy into ``shards/`` plus a compaction
(:meth:`StoreTier.migrate_legacy`), and the torn-line repair rules are
shared: a torn trailing line in a shard is skipped on load and dropped
at compaction, unparsable interior lines are skipped and logged, never
deleted.

Warm starts come in two strengths:

* **exact** (always on): a context already in the tier serves every
  recorded genome through :meth:`TierStore.get` — bitwise-identical to
  simulating, just free.  A campaign re-run or resume against the tier
  therefore produces bit-for-bit the fitnesses of a cold run.
* **neighbour seeding** (opt-in, trajectory-changing): for a context
  the tier has *not* seen, :meth:`StoreTier.warm_start_genomes` ranks
  registered profiles that match on machine/scenario/metric/cost-model
  by Jaccard similarity of their program fingerprints and returns the
  top genomes of the nearest ones.  Seeding the GA population with
  them changes the search trajectory by design (the point is to start
  near previous optima), so it is off by default and never used by the
  parity suites.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import struct
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GAError
from repro.rng import stable_hash
from repro.telemetry import emit as telemetry_emit

__all__ = [
    "StoreTier",
    "TierStore",
    "is_tier_path",
    "open_store",
    "record_key",
    "DEFAULT_BUCKETS",
]

Genome = Tuple[int, ...]

_log = logging.getLogger("repro.perf.storetier")

#: hash buckets compacted packs are organized by (key % DEFAULT_BUCKETS)
DEFAULT_BUCKETS = 16

#: tier marker file, also the lifetime-counter scoreboard
TIER_MARKER = "tier.json"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS evals (
    key    INTEGER PRIMARY KEY,
    bucket INTEGER NOT NULL,
    ctx    TEXT    NOT NULL,
    genome BLOB    NOT NULL,
    fitness REAL   NOT NULL,
    per    TEXT
);
CREATE INDEX IF NOT EXISTS idx_evals_ctx ON evals (ctx);
CREATE INDEX IF NOT EXISTS idx_evals_bucket ON evals (bucket);
"""


def record_key(context: str, genome: Genome) -> int:
    """Stable 63-bit content address of one ``(context, genome)`` record.

    Collisions would alias two records; 63 bits over store sizes in the
    millions keep the birthday probability below 1e-6, and SQLite
    integer keys must be signed, hence the mask.
    """
    return stable_hash(f"{context}|{','.join(str(g) for g in genome)}") & (
        (1 << 63) - 1
    )


def _pack_genome(genome: Genome) -> bytes:
    return struct.pack(f"<{len(genome)}q", *genome)


def _unpack_genome(blob: bytes) -> Genome:
    return tuple(struct.unpack(f"<{len(blob) // 8}q", blob))


def is_tier_path(path: Optional[str]) -> bool:
    """Whether *path* names a store *tier* rather than a legacy file.

    A tier is an existing directory, anything ending in ``.tier`` (the
    directory is then created on first open), or a path whose
    ``tier.json`` marker already exists.
    """
    if path is None:
        return False
    if os.path.isdir(path):
        return True
    if path.endswith(".tier") or path.rstrip("/").endswith(".tier"):
        return True
    return os.path.exists(os.path.join(path, TIER_MARKER))


def open_store(
    path: str,
    context: str,
    readonly: bool = False,
    flush_every: Optional[int] = None,
):
    """Open the right store implementation for *path*.

    Directories (and ``*.tier`` paths) open as a :class:`TierStore`
    bound to *context*; anything else opens the legacy single-file
    :class:`~repro.perf.store.EvaluationStore`.  ``readonly`` only
    matters for the legacy store — tier writers are per-process shards,
    so every :class:`TierStore` may append without coordination.
    """
    if is_tier_path(path):
        return TierStore(path, context=context, flush_every=flush_every)
    from repro.perf.store import DEFAULT_FLUSH_EVERY, EvaluationStore

    return EvaluationStore(
        path,
        context=context,
        readonly=readonly,
        flush_every=flush_every or DEFAULT_FLUSH_EVERY,
    )


# ----------------------------------------------------------------------
# per-shard context bloom filters
# ----------------------------------------------------------------------
#: bloom geometry: 2048 bits / 4 hashes keeps the false-positive rate
#: under 1% up to ~150 distinct contexts per shard (shards typically
#: hold one or two)
BLOOM_BITS = 2048
BLOOM_HASHES = 4


def _bloom_indexes(context: str) -> List[int]:
    return [
        stable_hash(f"bloom|{i}|{context}") % BLOOM_BITS
        for i in range(BLOOM_HASHES)
    ]


def _bloom_path(shard_path: str) -> str:
    return shard_path + ".bloom"


def _write_bloom(shard_path: str, contexts) -> None:
    """Persist the context bloom sidecar of a cooled shard (atomic).

    Best-effort: the sidecar only enables the replay *skip*; a missing
    or torn sidecar simply means the shard is replayed as before.
    """
    bits = bytearray(BLOOM_BITS // 8)
    for context in contexts:
        for index in _bloom_indexes(context):
            bits[index // 8] |= 1 << (index % 8)
    payload = {
        "version": 1,
        "m": BLOOM_BITS,
        "k": BLOOM_HASHES,
        "bits": bits.hex(),
    }
    path = _bloom_path(shard_path)
    tmp = path + f".tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - read-only mount
        try:
            os.remove(tmp)
        except OSError:
            pass


def _bloom_excludes(shard_path: str, context: str) -> bool:
    """True only when the sidecar *proves* the context is absent.

    Any defect — no sidecar (hot shard, crashed writer), torn JSON,
    foreign geometry — answers False, so defects degrade to a replay,
    never to a missed record.
    """
    try:
        with open(_bloom_path(shard_path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("m") != BLOOM_BITS or payload.get("k") != BLOOM_HASHES:
            return False
        bits = bytes.fromhex(payload["bits"])
        if len(bits) != BLOOM_BITS // 8:
            return False
    except (OSError, ValueError, TypeError, KeyError):
        return False
    return any(
        not bits[index // 8] & (1 << (index % 8))
        for index in _bloom_indexes(context)
    )


# ----------------------------------------------------------------------
# shard files
# ----------------------------------------------------------------------
class _ShardWriter:
    """One process's private append shard (O_EXCL-created JSONL file).

    A ``<shard>.lock`` sidecar carrying this pid marks the shard hot;
    compaction skips hot shards and reaps locks whose pid is gone.
    Appends batch flush+fsync every *flush_every* records and always
    flush+fsync on :meth:`close` (and from a GC finalizer as a safety
    net), mirroring the legacy store's durability contract.
    """

    def __init__(self, directory: str, flush_every: int) -> None:
        os.makedirs(directory, exist_ok=True)
        self.flush_every = flush_every
        self._unflushed = 0
        #: distinct contexts appended — becomes the bloom sidecar that
        #: lets cold lookups skip this shard once it cools
        self._contexts: set = set()
        while True:
            name = f"w-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
            path = os.path.join(directory, name)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:  # pragma: no cover - uuid collision
                continue
            break
        self.path = path
        self.lock_path = path + ".lock"
        with open(self.lock_path, "w", encoding="utf-8") as lock:
            lock.write(str(os.getpid()))
        self._handle = os.fdopen(fd, "w", encoding="utf-8")
        import weakref

        # safety net: a writer dropped without close() still flushes
        # and fsyncs its tail batch before the handle is finalized
        self._finalizer = weakref.finalize(
            self, _ShardWriter._final_flush, self._handle
        )

    @staticmethod
    def _final_flush(handle) -> None:
        try:
            if not handle.closed:
                handle.flush()
                os.fsync(handle.fileno())
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def append(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        ctx = record.get("ctx")
        if ctx is not None:
            self._contexts.add(ctx)
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if self._unflushed:
            telemetry_emit("store.flush", records=self._unflushed)
        self._unflushed = 0

    def close(self) -> None:
        if self._handle.closed:
            return
        self.flush()
        self._finalizer.detach()
        self._handle.close()
        try:
            os.remove(self.lock_path)
        except OSError:  # pragma: no cover - already reaped
            pass
        # an empty shard is pure clutter; remove it quietly
        try:
            if os.path.getsize(self.path) == 0:
                os.remove(self.path)
                return
        except OSError:  # pragma: no cover - concurrent compaction
            pass
        # the shard just cooled: publish its context bloom so cold
        # lookups for other contexts skip the replay entirely
        _write_bloom(self.path, self._contexts)


def _iter_shard_records(path: str, repair_log: Optional[List[str]] = None):
    """Yield ``(ctx, genome, fitness, per)`` from one shard file.

    Torn trailing lines (crash mid-append) are skipped; unparsable
    interior lines are foreign garbage — skipped and logged, never
    deleted.  The shard file itself is never modified here: repairs
    happen structurally at compaction, which simply does not carry the
    torn bytes into the pack.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        return
    for offset, raw, complete in _split_lines(data):
        if not raw.strip():
            continue
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            event = (
                f"skipped {'torn trailing' if not complete else 'unparsable'} "
                f"line at byte {offset} of {os.path.basename(path)} "
                f"({len(raw)} bytes)"
            )
            if repair_log is not None:
                repair_log.append(event)
            _log.warning("store tier shard %s: %s", path, event)
            telemetry_emit(
                "store.repair",
                action="skipped-torn-line" if not complete else
                "skipped-unparsable-line",
                offset=offset,
                bytes=len(raw),
            )
            continue
        try:
            ctx = record["ctx"]
            genome = tuple(int(g) for g in record["genome"])
            fitness = float(record["fitness"])
        except (ValueError, TypeError, KeyError):
            continue  # intact but foreign line: leave it alone
        yield ctx, genome, fitness, record.get("per")


def _split_lines(data: bytes):
    """``(offset, line, has_newline)`` triples over *data*."""
    pos = 0
    size = len(data)
    while pos < size:
        newline = data.find(b"\n", pos)
        if newline == -1:
            yield pos, data[pos:], False
            return
        yield pos, data[pos:newline], True
        pos = newline + 1


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign live pid
        return True
    return True


# ----------------------------------------------------------------------
# the tier
# ----------------------------------------------------------------------
class StoreTier:
    """Directory-level handle on a sharded evaluation-store tier."""

    def __init__(self, root: str, n_buckets: int = DEFAULT_BUCKETS) -> None:
        self.root = root
        self.n_buckets = n_buckets
        self.shards_dir = os.path.join(root, "shards")
        self.packs_dir = os.path.join(root, "packs")
        self.profiles_dir = os.path.join(root, "profiles")
        self.plans_dir = os.path.join(root, "plans")
        os.makedirs(self.shards_dir, exist_ok=True)
        os.makedirs(self.packs_dir, exist_ok=True)
        os.makedirs(self.profiles_dir, exist_ok=True)
        self._ensure_marker()

    # -- marker / scoreboard -------------------------------------------
    def _marker_path(self) -> str:
        return os.path.join(self.root, TIER_MARKER)

    def _ensure_marker(self) -> None:
        if not os.path.exists(self._marker_path()):
            self._write_marker({"version": 1, "n_buckets": self.n_buckets,
                                "hits": 0, "misses": 0, "appends": 0,
                                "compactions": 0, "bloom_skips": 0})
        else:
            data = self._read_marker()
            self.n_buckets = int(data.get("n_buckets", self.n_buckets))

    def _read_marker(self) -> dict:
        try:
            with open(self._marker_path(), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return {"version": 1, "n_buckets": self.n_buckets,
                    "hits": 0, "misses": 0, "appends": 0, "compactions": 0}

    def _write_marker(self, data: dict) -> None:
        tmp = self._marker_path() + f".tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._marker_path())

    def fold_counters(self, **deltas: int) -> None:
        """Best-effort lifetime counters (``repro store stats``).

        Read-modify-replace without a lock: concurrent folds may drop
        each other's increment, which is acceptable for a scoreboard —
        correctness never depends on these numbers.
        """
        data = self._read_marker()
        for name, delta in deltas.items():
            data[name] = int(data.get(name, 0)) + int(delta)
        try:
            self._write_marker(data)
        except OSError:  # pragma: no cover - read-only tier mount
            pass

    # -- enumeration ---------------------------------------------------
    def shard_files(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.shards_dir))
        except OSError:
            return []
        return [
            os.path.join(self.shards_dir, name)
            for name in names
            if name.endswith(".jsonl")
        ]

    def pack_files(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.packs_dir))
        except OSError:
            return []
        return [
            os.path.join(self.packs_dir, name)
            for name in names
            if name.endswith(".sqlite")
        ]

    def _hot_shards(self) -> set:
        """Shards owned by a live writer (lock sidecar with a live pid)."""
        hot = set()
        for shard in self.shard_files():
            lock = shard + ".lock"
            if not os.path.exists(lock):
                continue
            try:
                with open(lock, "r", encoding="utf-8") as handle:
                    pid = int(handle.read().strip() or "0")
            except (OSError, ValueError):
                pid = 0
            if pid and _pid_alive(pid):
                hot.add(shard)
            else:
                # the writer died without closing: reap the stale lock
                # so the shard cools and the next compaction folds it in
                try:
                    os.remove(lock)
                except OSError:  # pragma: no cover - racing reaper
                    pass
        return hot

    # -- lookup --------------------------------------------------------
    def load_context(
        self, context: str
    ) -> Tuple[Dict[Genome, float], Dict[Genome, dict], List[str]]:
        """``(entries, extras, repair_log)`` for one context.

        Packs answer with one indexed query each (columnar rows into a
        hash map); shards replay their JSONL tails on top, so the
        freshest append wins when a record appears in both.  Cooled
        shards carry a context *bloom sidecar* (written at writer
        close): when the bloom proves the context cannot be present the
        shard's replay is skipped outright, counted in the tier's
        ``bloom_skips`` scoreboard (``repro store stats``).
        """
        entries: Dict[Genome, float] = {}
        extras: Dict[Genome, dict] = {}
        repair_log: List[str] = []
        for pack in self.pack_files():
            try:
                conn = sqlite3.connect(f"file:{pack}?mode=ro", uri=True)
                try:
                    rows = conn.execute(
                        "SELECT genome, fitness, per FROM evals WHERE ctx = ?",
                        (context,),
                    ).fetchall()
                finally:
                    conn.close()
            except sqlite3.Error as exc:
                repair_log.append(f"skipped unreadable pack {pack}: {exc}")
                _log.warning("store tier %s: %s", self.root, repair_log[-1])
                continue
            for genome_blob, fitness, per in rows:
                genome = _unpack_genome(genome_blob)
                entries[genome] = fitness
                if per:
                    extras[genome] = json.loads(per)
        bloom_skips = 0
        for shard in self.shard_files():
            if _bloom_excludes(shard, context):
                bloom_skips += 1
                continue
            for ctx, genome, fitness, per in _iter_shard_records(
                shard, repair_log
            ):
                if ctx != context:
                    continue
                entries[genome] = fitness
                if per:
                    extras[genome] = dict(per)
        if bloom_skips:
            self.fold_counters(bloom_skips=bloom_skips)
        return entries, extras, repair_log

    def contexts(self) -> Dict[str, int]:
        """Record counts per context across packs and shards."""
        counts: Dict[str, int] = {}
        for pack in self.pack_files():
            try:
                conn = sqlite3.connect(f"file:{pack}?mode=ro", uri=True)
                try:
                    for ctx, n in conn.execute(
                        "SELECT ctx, COUNT(*) FROM evals GROUP BY ctx"
                    ):
                        counts[ctx] = counts.get(ctx, 0) + n
                finally:
                    conn.close()
            except sqlite3.Error:
                continue
        for shard in self.shard_files():
            for ctx, _genome, _fitness, _per in _iter_shard_records(shard):
                counts[ctx] = counts.get(ctx, 0) + 1
        return counts

    # -- compaction ----------------------------------------------------
    def compact(self, include_hot: bool = False) -> Dict[str, int]:
        """Fold cooled shards and existing packs into one fresh pack.

        Crash-safe by construction: the new pack is fully built and
        fsynced under ``*.tmp-<pid>`` (invisible to readers, reaped by
        later compactions), published atomically with ``os.replace``,
        and only then are the consumed inputs removed one by one.  A
        SIGKILL anywhere leaves every record reachable — worst case
        duplicated between the new pack and a not-yet-removed input,
        which load-time dedup collapses.  Returns summary counts.
        """
        from repro.resilience.faults import get_fault_injector

        injector = get_fault_injector()
        hot = self._hot_shards() if not include_hot else set()
        shards = [s for s in self.shard_files() if s not in hot]
        packs = self.pack_files()
        if not shards and len(packs) <= 1:
            return {"records": 0, "shards": 0, "packs": len(packs),
                    "skipped_hot": len(hot)}

        merged: Dict[int, Tuple[int, str, bytes, float, Optional[str]]] = {}
        repair_log: List[str] = []
        for pack in packs:
            try:
                conn = sqlite3.connect(f"file:{pack}?mode=ro", uri=True)
                try:
                    for key, bucket, ctx, genome, fitness, per in conn.execute(
                        "SELECT key, bucket, ctx, genome, fitness, per FROM evals"
                    ):
                        merged[key] = (bucket, ctx, genome, fitness, per)
                finally:
                    conn.close()
            except sqlite3.Error as exc:
                repair_log.append(f"skipped unreadable pack {pack}: {exc}")
                _log.warning("store tier %s: %s", self.root, repair_log[-1])
        for shard in shards:
            for ctx, genome, fitness, per in _iter_shard_records(
                shard, repair_log
            ):
                key = record_key(ctx, genome)
                merged[key] = (
                    key % self.n_buckets,
                    ctx,
                    _pack_genome(genome),
                    fitness,
                    json.dumps(per) if per else None,
                )

        pack_name = f"pack-{uuid.uuid4().hex[:12]}.sqlite"
        final_path = os.path.join(self.packs_dir, pack_name)
        tmp_path = final_path + f".tmp-{os.getpid()}"
        conn = sqlite3.connect(tmp_path)
        try:
            conn.executescript(_SCHEMA)
            conn.executemany(
                "INSERT OR REPLACE INTO evals "
                "(key, bucket, ctx, genome, fitness, per) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    (key, bucket, ctx, genome, fitness, per)
                    for key, (bucket, ctx, genome, fitness, per) in
                    merged.items()
                ),
            )
            conn.commit()
        finally:
            conn.close()
        with open(tmp_path, "rb") as handle:
            os.fsync(handle.fileno())
        if injector is not None:
            # test-only crash sites: a SIGKILL here must leave the tier
            # readable (records still in the inputs) …
            injector.maybe_kill("compact-kill-pre-publish", key=pack_name)
        os.replace(tmp_path, final_path)
        if injector is not None:
            # … and here too (records duplicated between the new pack
            # and the not-yet-removed inputs, collapsed on load)
            injector.maybe_kill("compact-kill-post-publish", key=pack_name)
        removed = 0
        for stale in packs + shards:
            try:
                os.remove(stale)
                removed += 1
            except OSError:  # pragma: no cover - already reaped
                pass
            for sidecar in (stale + ".lock", _bloom_path(stale)):
                if os.path.exists(sidecar):
                    try:
                        os.remove(sidecar)
                    except OSError:  # pragma: no cover
                        pass
        # reap temp packs from compactions that died pre-publish
        for name in os.listdir(self.packs_dir):
            if ".sqlite.tmp-" in name:
                path = os.path.join(self.packs_dir, name)
                pid_text = name.rsplit("-", 1)[-1]
                pid = int(pid_text) if pid_text.isdigit() else 0
                if path != tmp_path and (not pid or not _pid_alive(pid)):
                    try:
                        os.remove(path)
                    except OSError:  # pragma: no cover
                        pass
        summary = {
            "records": len(merged),
            "shards": len(shards),
            "packs": len(packs),
            "skipped_hot": len(hot),
        }
        self.fold_counters(compactions=1)
        telemetry_emit(
            "tier.compact",
            records=len(merged),
            shards=len(shards),
            packs=len(packs),
            bytes=os.path.getsize(final_path),
        )
        _log.info(
            "store tier %s: compacted %d shard(s) + %d pack(s) into %s "
            "(%d records)",
            self.root, len(shards), len(packs), pack_name, len(merged),
        )
        return summary

    # -- migration -----------------------------------------------------
    def migrate_legacy(self, legacy_path: str, compact: bool = True) -> int:
        """Import a legacy single-file JSONL store into the tier.

        The legacy file is parsed with the shared repair rules (torn
        trailing line skipped, foreign lines ignored) and its records
        re-appended through a private shard, then compacted by default.
        The legacy file itself is left untouched.  Returns the number
        of records imported.
        """
        if not os.path.exists(legacy_path):
            raise GAError(f"no legacy store at {legacy_path!r}")
        writer = _ShardWriter(self.shards_dir, flush_every=1024)
        imported = 0
        try:
            for ctx, genome, fitness, per in _iter_shard_records(legacy_path):
                record = {"ctx": ctx, "genome": list(genome), "fitness": fitness}
                if per:
                    record["per"] = per
                writer.append(record)
                imported += 1
        finally:
            writer.close()
        telemetry_emit("tier.migrate", records=imported)
        if compact and imported:
            self.compact()
        self.fold_counters(appends=imported)
        return imported

    # -- profiles and warm starts --------------------------------------
    def register_profile(self, context: str, profile: dict) -> None:
        """Persist the workload profile behind *context* (atomic)."""
        path = os.path.join(self.profiles_dir, f"{context}.json")
        if os.path.exists(path):
            return
        tmp = path + f".tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(profile, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def profiles(self) -> Dict[str, dict]:
        result: Dict[str, dict] = {}
        try:
            names = sorted(os.listdir(self.profiles_dir))
        except OSError:
            return result
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(
                    os.path.join(self.profiles_dir, name), "r", encoding="utf-8"
                ) as handle:
                    result[name[: -len(".json")]] = json.load(handle)
            except (OSError, ValueError):  # pragma: no cover - torn write
                continue
        return result

    def nearest_profiles(
        self, profile: dict, limit: int = 3
    ) -> List[Tuple[str, float]]:
        """Registered contexts nearest to *profile*, best first.

        Only profiles agreeing on machine, scenario, metric, cost model
        and parameter space are comparable (their genomes mean the same
        thing); among those, similarity is the Jaccard index of the
        program-fingerprint sets.  The profile's own context (similarity
        1.0 on identical programs) ranks first naturally.
        """
        wanted = {
            field: profile.get(field)
            for field in ("machine", "scenario", "metric", "cost_model", "space")
        }
        mine = set(profile.get("programs", ()))
        scored: List[Tuple[str, float]] = []
        for context, candidate in self.profiles().items():
            if any(candidate.get(f) != v for f, v in wanted.items()):
                continue
            theirs = set(candidate.get("programs", ()))
            union = mine | theirs
            if not union:
                continue
            scored.append((context, len(mine & theirs) / len(union)))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:limit]

    def warm_start_genomes(
        self, profile: dict, k: int = 8, neighbours: int = 3
    ) -> List[Genome]:
        """Best genomes of the nearest neighbour contexts, deduplicated.

        Intended for seeding a GA population on a workload the tier has
        not seen: the returned genomes are *candidates*, re-evaluated by
        the new job (their old fitnesses belong to other contexts and
        are never carried over).
        """
        seeds: List[Genome] = []
        seen = set()
        for context, similarity in self.nearest_profiles(
            profile, limit=neighbours
        ):
            entries, _extras, _log_ = self.load_context(context)
            best = sorted(entries.items(), key=lambda item: item[1])
            for genome, _fitness in best[: max(1, k // max(1, neighbours))]:
                if genome not in seen:
                    seen.add(genome)
                    seeds.append(genome)
            if len(seeds) >= k:
                break
        if seeds:
            telemetry_emit("tier.warm_start", seeds=len(seeds))
        return seeds[:k]

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        """Structural and lifetime statistics (``repro store stats``)."""
        shard_sizes = {
            os.path.basename(s): os.path.getsize(s) for s in self.shard_files()
        }
        pack_sizes = {
            os.path.basename(p): os.path.getsize(p) for p in self.pack_files()
        }
        marker = self._read_marker()
        hits = int(marker.get("hits", 0))
        misses = int(marker.get("misses", 0))
        return {
            "root": self.root,
            "n_buckets": self.n_buckets,
            "shards": shard_sizes,
            "packs": pack_sizes,
            "hot_shards": len(self._hot_shards()),
            "contexts": self.contexts(),
            "profiles": len(self.profiles()),
            "hits": hits,
            "misses": misses,
            "appends": int(marker.get("appends", 0)),
            "compactions": int(marker.get("compactions", 0)),
            "bloom_skips": int(marker.get("bloom_skips", 0)),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }


# ----------------------------------------------------------------------
# the EvaluationStore-compatible facade
# ----------------------------------------------------------------------
class TierStore:
    """One evaluation context's view of a :class:`StoreTier`.

    Drop-in for :class:`~repro.perf.store.EvaluationStore` wherever the
    GA stack touches a store (:class:`~repro.ga.fitness.FitnessCache`,
    :class:`~repro.ga.engine.GAEngine`, checkpoints,
    :class:`~repro.ga.parallel.MultiprocessEvaluator` snapshots), with
    two deliberate differences:

    * **every instance may write.**  Appends go straight to a private
      shard — durable immediately, no readonly buffering, no
      ``drain_pending`` round-trip (it always returns ``[]``).  The
      ``appended`` counter reports what this instance persisted.
    * **pickles re-open lazily.**  A copy landing in a worker process
      builds its own shard writer on first append; the entries map
      travels with the pickle, so lookups need no disk access.
    """

    #: tier appends batch flush+fsync at this many records
    DEFAULT_FLUSH_EVERY = 64

    def __init__(
        self,
        path: str,
        context: str = "default",
        flush_every: Optional[int] = None,
        readonly: bool = False,  # accepted for signature compatibility
    ) -> None:
        flush_every = flush_every or self.DEFAULT_FLUSH_EVERY
        if flush_every < 1:
            raise GAError(f"flush_every must be >= 1, got {flush_every}")
        self.path = path
        self.context = context
        self.readonly = False  # tier stores always append shard-locally
        self.flush_every = flush_every
        self.tier = StoreTier(path)
        self.hits = 0
        self.misses = 0
        #: records this instance appended to its shard
        self.appended = 0
        self._entries, self._extras, self.repair_log = self.tier.load_context(
            context
        )
        self._writer: Optional[_ShardWriter] = None
        # counter values already folded into the tier scoreboard, so a
        # re-entrant close() folds only the delta and the public
        # counters survive for callers (campaign workers report them)
        self._folded = (0, 0, 0)

    # -- lookups -------------------------------------------------------
    def get(self, genome: Sequence[int]) -> Optional[float]:
        key = genome if type(genome) is tuple else tuple(int(g) for g in genome)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def __contains__(self, genome: Sequence[int]) -> bool:
        key = genome if type(genome) is tuple else tuple(int(g) for g in genome)
        return key in self._entries

    def per_benchmark(self, genome: Sequence[int]) -> Optional[dict]:
        key = genome if type(genome) is tuple else tuple(int(g) for g in genome)
        return self._extras.get(key)

    # -- appends -------------------------------------------------------
    def record(
        self,
        genome: Sequence[int],
        fitness: float,
        per_benchmark: Optional[dict] = None,
    ) -> None:
        key = tuple(int(g) for g in genome)
        if isinstance(fitness, (tuple, list)):
            # The pack schema pins ``fitness REAL NOT NULL`` — vector
            # records would be silently truncated at compaction.  Refuse
            # them up front; multi-objective runs use a single-file
            # EvaluationStore (or no store).
            raise GAError(
                f"store tier records are scalar-only; got vector fitness "
                f"{list(fitness)!r} for genome {list(key)} (use a "
                f"single-file EvaluationStore for multi-objective runs)"
            )
        fitness = float(fitness)
        if fitness != fitness or fitness in (float("inf"), float("-inf")):
            raise GAError(f"non-finite fitness {fitness!r} for genome {list(key)}")
        if self._entries.get(key) == fitness:
            return
        self._entries[key] = fitness
        if per_benchmark:
            self._extras[key] = dict(per_benchmark)
        record = {"ctx": self.context, "genome": list(key), "fitness": fitness}
        if per_benchmark:
            record["per"] = dict(per_benchmark)
        if self._writer is None:
            self._writer = _ShardWriter(
                self.tier.shards_dir, flush_every=self.flush_every
            )
        self._writer.append(record)
        self.appended += 1

    # -- compatibility surface -----------------------------------------
    def drain_pending(self) -> List[Tuple[Genome, float, Optional[dict]]]:
        """Tier appends are direct; nothing ever buffers."""
        return []

    def snapshot(self) -> Dict[Genome, float]:
        return dict(self._entries)

    @property
    def size(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"TierStore({self.path!r}, context={self.context!r}, "
            f"entries={self.size}, hits={self.hits}, misses={self.misses}, "
            f"appended={self.appended})"
        )

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        """Flush + fsync the shard tail, release it, fold counters."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        deltas = (
            self.hits - self._folded[0],
            self.misses - self._folded[1],
            self.appended - self._folded[2],
        )
        if any(deltas):
            self.tier.fold_counters(
                hits=deltas[0], misses=deltas[1], appends=deltas[2]
            )
            self._folded = (self.hits, self.misses, self.appended)

    def __enter__(self) -> "TierStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self):
        state = self.__dict__.copy()
        # shard writers are process-private; the far side re-opens its
        # own on first append (that is the whole point of the tier)
        state["_writer"] = None
        # a copy landing in another process counts its own activity
        state["hits"] = 0
        state["misses"] = 0
        state["appended"] = 0
        state["_folded"] = (0, 0, 0)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


# ----------------------------------------------------------------------
# workload profiles
# ----------------------------------------------------------------------
def build_profile(machine, scenario, metric, cost_model, space, programs) -> dict:
    """The workload profile registered next to an evaluation context.

    Mirrors :func:`repro.perf.store.evaluation_context_key` field for
    field; the program fingerprints double as the similarity features
    for :meth:`StoreTier.nearest_profiles`.
    """
    import repro

    return {
        "version": repro.__version__,
        "machine": repr(machine),
        "scenario": repr(scenario),
        "metric": getattr(metric, "value", repr(metric)),
        "cost_model": repr(cost_model),
        "space": ",".join(
            f"{name}:{spec.low}-{spec.high}"
            for name, spec in zip(space.names, space.specs)
        ),
        "programs": [program.fingerprint() for program in programs],
    }
