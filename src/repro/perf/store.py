"""Persistent evaluation store.

An append-only JSONL file mapping (evaluation context, genome) to the
fitness that a full simulation of that genome produced, plus optional
per-benchmark detail.  The *context* is a fingerprint of everything that
determines the number — machine model, scenario, metric, cost model,
parameter space and the training programs' content hashes — so a store
file can be shared between tuning runs, multiprocess workers (as a
read-only snapshot), checkpoint resume and the benchmark scripts without
ever serving a stale value.

Layout: one JSON object per line, ``{"ctx": ..., "genome": [...],
"fitness": ..., "per": {...}?}``.  Appends are atomic at line
granularity.

Crash safety: a crash mid-append leaves a *torn* trailing line.  On
load, a writable store truncates the file back to the last intact line
and records the repair in :attr:`repair_log` (also emitted through the
``repro.perf.store`` logger); a read-only store skips the torn bytes
without touching the file.  Unparsable lines elsewhere in the file are
foreign garbage — skipped and logged, never deleted.

Durability: appends are buffered and flushed + ``fsync``'d every
``flush_every`` records (default 64) and on :meth:`close`, trading at
most ``flush_every - 1`` re-simulatable records after a hard crash for
two orders of magnitude fewer ``fsync`` calls on the hot record path.
Set ``flush_every=1`` for write-through durability (each record costs
one flush+fsync), or raise it when genomes are cheap to re-simulate.

To wipe the store, delete the file; to inspect it, read the JSONL
directly or use :meth:`EvaluationStore.describe`.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GAError
from repro.rng import stable_hash
from repro.telemetry import emit as telemetry_emit

__all__ = ["EvaluationStore", "evaluation_context_key"]

Genome = Tuple[int, ...]

_log = logging.getLogger("repro.perf.store")


def _parse_fitness(raw):
    """Fitness from a JSONL record: scalar float, or a tuple for the
    multi-objective records Pareto search writes (``"fitness": [...]``).
    Scalar records go through the exact ``float()`` conversion they
    always did."""
    if isinstance(raw, list):
        return tuple(float(v) for v in raw)
    return float(raw)


def _check_finite(fitness, key: Genome):
    components = fitness if isinstance(fitness, tuple) else (fitness,)
    for component in components:
        if component != component or component in (float("inf"), float("-inf")):
            raise GAError(f"non-finite fitness {fitness!r} for genome {list(key)}")

#: default number of buffered records between flush+fsync pairs
DEFAULT_FLUSH_EVERY = 64


def evaluation_context_key(
    machine,
    scenario,
    metric,
    cost_model,
    space,
    programs,
) -> str:
    """Fingerprint of one evaluation context.

    Any change to the machine model, scenario, optimization goal, cost
    model, search space or training-program content yields a different
    key, which silently invalidates the persisted entries (they stay in
    the file but are never served).
    """
    import repro

    parts = [
        repro.__version__,
        repr(machine),
        repr(scenario),
        getattr(metric, "value", repr(metric)),
        repr(cost_model),
        ",".join(
            f"{name}:{spec.low}-{spec.high}"
            for name, spec in zip(space.names, space.specs)
        ),
    ]
    parts.extend(program.fingerprint() for program in programs)
    return f"{stable_hash('|'.join(parts)):016x}"


class EvaluationStore:
    """On-disk genome -> fitness store for one evaluation context.

    ``readonly=True`` turns the store into a buffered reader for worker
    processes under single-writer discipline: lookups serve the on-disk
    entries as usual, but :meth:`record` never touches the file —
    records accumulate in memory (and serve same-process lookups) until
    the coordinating process collects them with :meth:`drain_pending`
    and replays them into its own writable store.

    ``flush_every`` sets the durability/throughput trade-off described
    in the module docstring.
    """

    def __init__(
        self,
        path: str,
        context: str = "default",
        readonly: bool = False,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if flush_every < 1:
            raise GAError(f"flush_every must be >= 1, got {flush_every}")
        self.path = path
        self.context = context
        self.readonly = readonly
        self.flush_every = flush_every
        self.hits = 0
        self.misses = 0
        #: human-readable repair/skip events from the last load
        self.repair_log: List[str] = []
        self._entries: Dict[Genome, float] = {}
        self._extras: Dict[Genome, dict] = {}
        self._pending: List[Tuple[Genome, float, Optional[dict]]] = []
        self._handle = None
        self._unflushed = 0
        self._finalizer = None
        self._load()

    @staticmethod
    def _final_flush(handle) -> None:
        """GC/exit safety net: fsync the tail batch of a store that was
        dropped without :meth:`close` (the interpreter's own finalizer
        flushes to the OS but never fsyncs)."""
        try:
            if not handle.closed:
                handle.flush()
                os.fsync(handle.fileno())
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        pos = 0
        size = len(data)
        good_end = 0  # byte offset just past the last intact line
        while pos < size:
            newline = data.find(b"\n", pos)
            if newline == -1:
                raw, end, complete = data[pos:], size, False
            else:
                raw, end, complete = data[pos:newline], newline + 1, True
            line_start = pos
            pos = end
            if not raw.strip():
                good_end = end
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                if not complete or end == size:
                    # torn trailing line: a crash mid-append
                    self._repair_tear(line_start, len(raw), good_end)
                else:
                    self.repair_log.append(
                        f"skipped unparsable line at byte {line_start} "
                        f"({len(raw)} bytes)"
                    )
                    _log.warning(
                        "evaluation store %s: %s", self.path, self.repair_log[-1]
                    )
                    telemetry_emit(
                        "store.repair",
                        action="skipped-unparsable-line",
                        offset=line_start,
                        bytes=len(raw),
                    )
                continue
            good_end = end
            try:
                context = record["ctx"]
                genome = tuple(int(g) for g in record["genome"])
                fitness = _parse_fitness(record["fitness"])
            except (ValueError, TypeError, KeyError):
                continue  # foreign but intact line: leave it alone
            if context != self.context:
                continue
            self._entries[genome] = fitness
            extras = record.get("per")
            if extras:
                self._extras[genome] = extras

    def _repair_tear(self, offset: int, length: int, good_end: int) -> None:
        """Handle a torn trailing line found at *offset* during load."""
        if self.readonly:
            action = "skipped-torn-line"
            event = (
                f"skipped torn trailing line at byte {offset} ({length} bytes); "
                "read-only store leaves the file untouched"
            )
        else:
            os.truncate(self.path, good_end)
            action = "truncated-torn-line"
            event = (
                f"truncated torn trailing line at byte {offset} "
                f"({length} bytes dropped; crash mid-append)"
            )
        self.repair_log.append(event)
        _log.warning("evaluation store %s: %s", self.path, event)
        telemetry_emit(
            "store.repair", action=action, offset=offset, bytes=length
        )

    # ------------------------------------------------------------------
    def get(self, genome: Sequence[int]) -> Optional[float]:
        """Persisted fitness of *genome* in this context, or None."""
        key = genome if type(genome) is tuple else tuple(int(g) for g in genome)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def __contains__(self, genome: Sequence[int]) -> bool:
        key = genome if type(genome) is tuple else tuple(int(g) for g in genome)
        return key in self._entries

    def record(
        self,
        genome: Sequence[int],
        fitness: float,
        per_benchmark: Optional[dict] = None,
    ) -> None:
        """Persist one evaluation (no-op if already stored unchanged).

        Appends are buffered: see the class docstring for the
        ``flush_every`` durability/throughput trade-off.
        """
        key = tuple(int(g) for g in genome)
        if isinstance(fitness, (tuple, list)):
            fitness = tuple(float(v) for v in fitness)
        else:
            fitness = float(fitness)
        _check_finite(fitness, key)
        if self._entries.get(key) == fitness:
            return
        self._entries[key] = fitness
        if per_benchmark:
            self._extras[key] = dict(per_benchmark)
        if self.readonly:
            self._pending.append((key, fitness, dict(per_benchmark) if per_benchmark else None))
            return
        record = {"ctx": self.context, "genome": list(key), "fitness": fitness}
        if per_benchmark:
            record["per"] = dict(per_benchmark)
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            needs_newline = False
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                with open(self.path, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    needs_newline = tail.read(1) != b"\n"
            self._handle = open(self.path, "a", encoding="utf-8")
            import weakref

            if self._finalizer is not None:
                self._finalizer.detach()
            self._finalizer = weakref.finalize(
                self, EvaluationStore._final_flush, self._handle
            )
            if needs_newline:
                # a crash mid-append left a truncated line; start fresh
                # so the next record is not glued onto the garbage
                self._handle.write("\n")
        line = json.dumps(record) + "\n"
        injector = self._fault_injector()
        if injector is not None and injector.should_fire("torn-write", key=str(list(key))):
            # simulate a crash mid-append: only a prefix of the line
            # reaches the disk and the process's handle is gone.  The
            # record survives in memory; the next append (or the next
            # load) repairs the tear.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            self._handle.close()
            self._handle = None
            self._unflushed = 0
            return
        self._handle.write(line)
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._flush_fsync()

    @staticmethod
    def _fault_injector():
        """Installed fault injector, or None (the near-universal case)."""
        try:
            from repro.resilience.faults import get_fault_injector
        except ImportError:  # pragma: no cover - resilience always ships
            return None
        return get_fault_injector()

    def _flush_fsync(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            if self._unflushed:
                telemetry_emit("store.flush", records=self._unflushed)
        self._unflushed = 0

    def per_benchmark(self, genome: Sequence[int]) -> Optional[dict]:
        """Stored per-benchmark detail for *genome*, if any."""
        key = genome if type(genome) is tuple else tuple(int(g) for g in genome)
        return self._extras.get(key)

    # ------------------------------------------------------------------
    def drain_pending(self) -> List[Tuple[Genome, float, Optional[dict]]]:
        """Take (and clear) the records buffered in readonly mode.

        Each item is ``(genome, fitness, per_benchmark_or_None)``,
        ready for :meth:`record` on the coordinator's writable store.
        """
        pending = self._pending
        self._pending = []
        return pending

    def snapshot(self) -> Dict[Genome, float]:
        """Immutable-by-convention copy for worker initializers."""
        return dict(self._entries)

    @property
    def size(self) -> int:
        """Number of persisted genomes in this context."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def describe(self) -> str:
        """One-line summary (inspection helper)."""
        return (
            f"EvaluationStore({self.path!r}, context={self.context!r}, "
            f"entries={self.size}, hits={self.hits}, misses={self.misses})"
        )

    def flush(self) -> None:
        """Force buffered appends to disk (flush + fsync) now."""
        if self._handle is not None:
            self._flush_fsync()

    def close(self) -> None:
        """Flush + fsync buffered appends and release the handle
        (entries stay loaded).  The final partial ``flush_every`` batch
        is made durable here — a clean close never leaves unfsynced
        records behind."""
        if self._handle is not None:
            self._flush_fsync()
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EvaluationStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_handle"] = None  # file handles don't pickle; reopen lazily
        state["_unflushed"] = 0
        state["_finalizer"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # A pickled store always lands in another process (pool worker,
        # checkpoint restore) — never the single writer.  Re-assert
        # readonly so a lazily reopened handle can only buffer to
        # ``_pending``, preserving the single-writer discipline even
        # for a store that was writable on the pickling side.
        self.readonly = True
