"""Region-keyed cache of compiled method versions.

One :class:`MethodPlanCache` holds, for a single (program, compilation
context) pair, every distinct compiled version the optimizing compiler
has produced so far, each tagged with the :class:`ParamRegion` of
parameter vectors that reproduce it (see
:class:`repro.jvm.inlining.ParamRegionBuilder`).

Regions from distinct plan expansions are provably disjoint: the
expansion is deterministic, so if a parameter vector satisfied every
comparison constraint of two recorded traces, both traces would be *the*
trace for that vector and hence equal.  A lookup therefore matches at
most one entry per method, which lets the cache answer "which cached
version serves each method under these parameters?" for the whole
program with a single vectorized bound check over all entries.

Besides the :class:`~repro.jvm.compiled.CompiledMethod` objects, the
cache maintains *column arrays* of the per-version scalars the runtime
accounting needs (compile cycles, code size, cycles/invocation, inline
count, residual self-rate) plus per-entry residual-edge arrays, so the
accelerated runtime can do its accounting with NumPy gathers instead of
attribute chasing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.jvm.compiled import CompiledMethod
from repro.jvm.inlining import ParamRegion

__all__ = ["MethodPlanCache"]


class MethodPlanCache:
    """Program-wide store of region-tagged compiled method versions."""

    _INITIAL_CAPACITY = 256

    def __init__(self, n_methods: int) -> None:
        self.n_methods = n_methods
        self._versions: List[CompiledMethod] = []
        self._regions: List[ParamRegion] = []
        # column arrays, parallel to the entry list
        self._compile_cycles: List[float] = []
        self._code_size: List[float] = []
        self._cycles_per_invocation: List[float] = []
        self._inline_count: List[int] = []
        self._self_rate: List[float] = []
        # residual forward edges per entry: (callee_ids, rates), kept as
        # Python lists — the propagation loop consumes them scalar by
        # scalar, where list indexing beats ndarray item access
        self._edges: List[Tuple[Tuple[int, ...], Tuple[float, ...]]] = []
        # dense matcher arrays, written row-by-row at insert time with
        # capacity doubling so match() never rebuilds them from scratch
        cap = self._INITIAL_CAPACITY
        self._LO = np.zeros((cap, 5), dtype=np.int64)
        self._HI = np.zeros((cap, 5), dtype=np.int64)
        self._ENTRY_METHOD = np.zeros(cap, dtype=np.int64)
        # ndarray views of the scalar columns, rebuilt lazily when the
        # entry count changes (the batch accounting gathers from these)
        self._column_cache: Optional[Tuple[np.ndarray, ...]] = None
        # restricted-match row table: (method-id key, entry count at
        # build, entry rows of those methods, position of each row's
        # method within the key); rebuilt when entries were added
        self._method_rows_cache: Optional[
            Tuple[Tuple[int, ...], int, np.ndarray, np.ndarray]
        ] = None
        self._self_rate_cache: Optional[np.ndarray] = None
        # per-entry residual edges as ndarray pairs, plus the per-entry
        # edge count column — built lazily for the adaptive matrix
        # kernel's flattened row scatters
        self._edge_array_cache: dict = {}
        self._edge_count_cache: Optional[np.ndarray] = None
        # whole-cache CSR of the residual edges, for the compiled
        # propagation kernels (repro.perf.native).  Grown incrementally
        # — entries are append-only, so new entries' edges extend the
        # tail of capacity-doubling buffers instead of rebuilding the
        # whole CSR (the serial accelerator asks for the CSR after
        # every compile while caches are cold)
        self._csr_entries = 0
        self._csr_edges = 0
        self._csr_offsets = np.zeros(1, dtype=np.int64)
        self._csr_callees = np.empty(0, dtype=np.int64)
        self._csr_rates = np.empty(0, dtype=np.float64)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._versions)

    def version(self, entry: int) -> CompiledMethod:
        """The compiled method stored at *entry*."""
        return self._versions[entry]

    def region(self, entry: int) -> ParamRegion:
        """The validity region of *entry*."""
        return self._regions[entry]

    def add(self, method_id: int, region: ParamRegion, version: CompiledMethod) -> int:
        """Insert a version with its region; returns the new entry id."""
        entry = len(self._versions)
        if entry == len(self._ENTRY_METHOD):
            grow = 2 * entry
            self._LO = np.vstack([self._LO, np.zeros((entry, 5), np.int64)])
            self._HI = np.vstack([self._HI, np.zeros((entry, 5), np.int64)])
            self._ENTRY_METHOD = np.concatenate(
                [self._ENTRY_METHOD, np.zeros(entry, np.int64)]
            )
            assert len(self._ENTRY_METHOD) == grow
        self._LO[entry] = region.lo
        self._HI[entry] = region.hi
        self._ENTRY_METHOD[entry] = method_id
        self._versions.append(version)
        self._regions.append(region)
        self._compile_cycles.append(version.compile_cycles)
        self._code_size.append(version.code_size)
        self._cycles_per_invocation.append(version.cycles_per_invocation)
        self._inline_count.append(version.inline_count)
        self._self_rate.append(version.residual_self_rate)
        forward = version.residual_forward
        self._edges.append(tuple(zip(*forward)) if forward else ((), ()))
        return entry

    # ------------------------------------------------------------------
    def match(self, values: Tuple[int, ...]) -> np.ndarray:
        """Resolve every method's cache entry for a parameter vector.

        Returns an array of length ``n_methods``: the matching entry id
        per method, or -1 where no cached version covers *values*.  One
        ``(entries, 5)`` bound check resolves the whole program.
        """
        resolved = np.full(self.n_methods, -1, dtype=np.int64)
        n = len(self._versions)
        if not n:
            return resolved
        lo = self._LO[:n]
        hi = self._HI[:n]
        p = np.asarray(values, dtype=np.int64)
        mask = ((lo <= p) & (p <= hi)).all(axis=1)
        hits = np.flatnonzero(mask)
        # regions of one method are disjoint, so each method gets at
        # most one hit; later entries would simply overwrite equals
        resolved[self._ENTRY_METHOD[:n][hits]] = hits
        return resolved

    def _method_rows(
        self, key: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Entry rows of the methods in *key*, with key positions.

        Returns ``(rows, rows_pos)``: the entry ids whose method is in
        *key* and, parallel to them, each entry's method's index within
        *key*.  Cached until the entry count changes.
        """
        n = len(self._versions)
        cached = self._method_rows_cache
        if cached is not None and cached[0] == key and cached[1] == n:
            return cached[2], cached[3]
        mids = np.asarray(key, dtype=np.int64)
        pos_lookup = np.full(self.n_methods, -1, dtype=np.int64)
        pos_lookup[mids] = np.arange(len(mids), dtype=np.int64)
        entry_methods = self._ENTRY_METHOD[:n]
        pos = pos_lookup[entry_methods]
        rows = np.flatnonzero(pos >= 0)
        rows_pos = pos[rows]
        self._method_rows_cache = (key, n, rows, rows_pos)
        return rows, rows_pos

    def match_methods(
        self, values: Tuple[int, ...], method_ids: Sequence[int]
    ) -> np.ndarray:
        """Resolve only *method_ids* for a parameter vector.

        Returns an array parallel to *method_ids*: the matching entry id
        per listed method, or -1 where no cached version covers
        *values*.  The bound check is restricted to entries of the
        listed methods and the result array is key-sized, so adaptive
        runs — which only ever read the promoted methods — avoid the
        whole-program resolve-and-copy of :meth:`match`.
        """
        key = tuple(method_ids)
        resolved = np.full(len(key), -1, dtype=np.int64)
        if not len(self._versions) or not key:
            return resolved
        rows, rows_pos = self._method_rows(key)
        if not len(rows):
            return resolved
        p = np.asarray(values, dtype=np.int64)
        mask = ((self._LO[rows] <= p) & (p <= self._HI[rows])).all(axis=1)
        hits = np.flatnonzero(mask)
        resolved[rows_pos[hits]] = rows[hits]
        return resolved

    def match_many(self, values_matrix: np.ndarray) -> np.ndarray:
        """Resolve every method's entry for a whole batch of genomes.

        ``values_matrix`` is ``(n_genomes, 5)``; returns an
        ``(n_genomes, n_methods)`` array of entry ids (-1 where no
        cached version covers that genome's vector).

        The bound checks run per dimension over the *distinct* values
        of that gene across the batch: GA generations repeat gene
        values heavily (elites, crossover offspring share parent
        genes), so each dimension compares ``k_d x entries`` values
        with ``k_d`` typically far below the genome count, and the
        per-genome combine is a cheap boolean AND.  The result is
        identical to stacking ``n_genomes`` calls to :meth:`match`.
        """
        p = np.asarray(values_matrix, dtype=np.int64)
        resolved = np.full((len(p), self.n_methods), -1, dtype=np.int64)
        n = len(self._versions)
        if not n or not len(p):
            return resolved
        lo = self._LO[:n]
        hi = self._HI[:n]
        mask: Optional[np.ndarray] = None
        for d in range(p.shape[1]):
            values, inverse = np.unique(p[:, d], return_inverse=True)
            dim_hit = (lo[:, d] <= values[:, None]) & (values[:, None] <= hi[:, d])
            expanded = dim_hit[inverse]  # (genomes, entries)
            mask = expanded if mask is None else (mask & expanded)
        g_idx, hits = np.nonzero(mask)
        resolved[g_idx, self._ENTRY_METHOD[:n][hits]] = hits
        return resolved

    # ------------------------------------------------------------------
    # column access for the vectorized accounting
    # ------------------------------------------------------------------
    def column_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(compile_cycles, code_size, cycles_per_invocation,
        inline_count)`` as ndarray columns over all entries.

        The batch accounting gathers from these with fancy indexing;
        the float conversions are exact (the columns hold Python floats
        produced by the compilers).  Rebuilt only when entries were
        added since the last call.
        """
        cols = self._column_cache
        n = len(self._versions)
        if cols is None or len(cols[0]) != n:
            cols = (
                np.array(self._compile_cycles, dtype=np.float64),
                np.array(self._code_size, dtype=np.float64),
                np.array(self._cycles_per_invocation, dtype=np.float64),
                np.array(self._inline_count, dtype=np.int64),
            )
            self._column_cache = cols
        return cols

    def compile_cycles_of(self, entries: np.ndarray) -> List[float]:
        """Compile-cycle column values for *entries* (Python floats)."""
        cc = self._compile_cycles
        return [cc[e] for e in entries]

    def code_sizes_of(self, entries: np.ndarray) -> np.ndarray:
        """Code-size column values for *entries*."""
        cs = self._code_size
        return np.array([cs[e] for e in entries], dtype=np.float64)

    def cycles_per_invocation_of(self, entries: np.ndarray) -> np.ndarray:
        """Cycles-per-invocation column values for *entries*."""
        cpi = self._cycles_per_invocation
        return np.array([cpi[e] for e in entries], dtype=np.float64)

    def inline_counts_of(self, entries: np.ndarray) -> int:
        """Total inline sites across *entries* (exact integer sum)."""
        ic = self._inline_count
        return sum(ic[e] for e in entries)

    def self_rate(self, entry: int) -> float:
        """Residual self-recursion rate of one entry."""
        return self._self_rate[entry]

    def self_rate_column(self) -> np.ndarray:
        """Residual self-rate as an ndarray column over all entries.

        Grown incrementally when entries were added since the last
        call (a capacity-doubling buffer; only the new tail is
        written); the adaptive matrix kernel gathers per-group scalars
        from it and the compiled propagation kernels index it per
        entry.
        """
        col = self._self_rate_cache
        n = len(self._versions)
        if col is None or col.base.shape[0] < n:
            cap = max(64, 2 * n)
            grown = np.empty(cap, dtype=np.float64)
            grown[:n] = self._self_rate
            self._self_rate_cache = col = grown[:n]
        elif col.shape[0] != n:
            old = col.shape[0]
            base = col.base
            base[old:n] = self._self_rate[old:]
            self._self_rate_cache = col = base[:n]
        return col

    def edges(self, entry: int) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
        """Residual forward edges ``(callee_ids, rates)`` of one entry."""
        return self._edges[entry]

    def edge_arrays(self, entry: int) -> Tuple[np.ndarray, np.ndarray]:
        """Residual forward edges of one entry as an ndarray pair.

        ``(callee_ids int64, rates float64)`` in edge order, cached per
        entry: the adaptive matrix kernel concatenates these across a
        promoted row's columns to apply every edge contribution with a
        single scatter.  The float conversion is exact.
        """
        cached = self._edge_array_cache.get(entry)
        if cached is None:
            callees, rates = self._edges[entry]
            cached = (
                np.array(callees, dtype=np.int64),
                np.array(rates, dtype=np.float64),
            )
            self._edge_array_cache[entry] = cached
        return cached

    def edge_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All entries' residual edges as one CSR triple.

        ``(offsets int64 [entries+1], callees int64, rates float64)``
        with entry ``e``'s edges at ``callees[offsets[e]:offsets[e+1]]``
        in edge order — the layout the compiled propagation kernels
        walk.  The float conversion is exact.

        Entries are append-only, so the CSR grows incrementally:
        entries added since the last call extend the tails of
        capacity-doubling buffers (amortized O(new edges) per call,
        which keeps the per-miss cost flat when the serial accelerator
        propagates between compiles on a cold cache).  The returned
        arrays are right-sized read-only views of those buffers.
        """
        n = len(self._versions)
        if n > self._csr_entries:
            if n + 1 > self._csr_offsets.shape[0]:
                cap = max(64, 2 * (n + 1))
                grown = np.zeros(cap, dtype=np.int64)
                grown[: self._csr_entries + 1] = self._csr_offsets[
                    : self._csr_entries + 1
                ]
                self._csr_offsets = grown
            new_edges = self._edges[self._csr_entries : n]
            added = sum(len(e[0]) for e in new_edges)
            total = self._csr_edges + added
            if total > self._csr_callees.shape[0]:
                cap = max(256, 2 * total)
                callees = np.empty(cap, dtype=np.int64)
                rates = np.empty(cap, dtype=np.float64)
                callees[: self._csr_edges] = self._csr_callees[: self._csr_edges]
                rates[: self._csr_edges] = self._csr_rates[: self._csr_edges]
                self._csr_callees = callees
                self._csr_rates = rates
            pos = self._csr_edges
            flat_callees: list = []
            flat_rates: list = []
            lengths = np.empty(len(new_edges), dtype=np.int64)
            for i, (entry_callees, entry_rates) in enumerate(new_edges):
                flat_callees.extend(entry_callees)
                flat_rates.extend(entry_rates)
                lengths[i] = len(entry_callees)
            self._csr_callees[pos : pos + added] = flat_callees
            self._csr_rates[pos : pos + added] = flat_rates
            np.cumsum(lengths, out=lengths)
            lengths += pos
            self._csr_offsets[self._csr_entries + 1 : n + 1] = lengths
            self._csr_entries = n
            self._csr_edges = pos + added
        return (
            self._csr_offsets[: n + 1],
            self._csr_callees[: self._csr_edges],
            self._csr_rates[: self._csr_edges],
        )

    def edge_count_column(self) -> np.ndarray:
        """Residual-edge count per entry, as an int64 column.

        Rebuilt only when entries were added since the last call.
        """
        col = self._edge_count_cache
        n = len(self._versions)
        if col is None or len(col) != n:
            col = np.array([len(e[0]) for e in self._edges], dtype=np.int64)
            self._edge_count_cache = col
        return col

    # ------------------------------------------------------------------
    # flat-array serialization (shm plan interning)
    # ------------------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The whole cache as flat numpy arrays, suitable for shm.

        Every column round-trips exactly: the scalar columns hold
        Python floats, float64 storage is lossless for them, and the
        residual edges ship as the same CSR triple the compiled kernels
        walk.  :meth:`load_arrays` reconstructs entries whose
        :class:`~repro.jvm.compiled.CompiledMethod` objects compare
        equal to the originals, so a warm-started cache resolves and
        accounts bitwise-identically to the cache that exported it.
        """
        n = len(self._versions)
        offsets, callees, rates = self.edge_csr()
        return {
            "n_methods": np.array([self.n_methods], dtype=np.int64),
            "entry_method": self._ENTRY_METHOD[:n].copy(),
            "lo": self._LO[:n].copy(),
            "hi": self._HI[:n].copy(),
            "opt_level": np.array(
                [v.opt_level for v in self._versions], dtype=np.int64
            ),
            "compile_cycles": np.array(self._compile_cycles, dtype=np.float64),
            "code_size": np.array(self._code_size, dtype=np.float64),
            "cycles_per_invocation": np.array(
                self._cycles_per_invocation, dtype=np.float64
            ),
            "inline_count": np.array(self._inline_count, dtype=np.int64),
            "self_rate": np.array(self._self_rate, dtype=np.float64),
            "edge_offsets": np.array(offsets, dtype=np.int64),
            "edge_callees": np.array(callees, dtype=np.int64),
            "edge_rates": np.array(rates, dtype=np.float64),
        }

    def _region_keys(self) -> Set[Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
        """The (method, lo, hi) identity of every present entry."""
        return {
            (version.method_id, region.lo, region.hi)
            for version, region in zip(self._versions, self._regions)
        }

    def load_arrays(self, arrays: Dict[str, np.ndarray]) -> int:
        """Merge exported entries into this cache; returns entries added.

        Entries are deduplicated by ``(method_id, region)``: regions of
        one method from distinct plan expansions are disjoint, so an
        entry whose region already exists *is* the same compiled
        version and is skipped.  Safe to call repeatedly as the
        publisher's archive grows across epochs.
        """
        if int(arrays["n_methods"][0]) != self.n_methods:
            raise ValueError(
                f"plan arrays describe {int(arrays['n_methods'][0])} methods, "
                f"cache holds {self.n_methods}"
            )
        seen = self._region_keys()
        entry_method = arrays["entry_method"]
        lo_rows = arrays["lo"]
        hi_rows = arrays["hi"]
        opt_level = arrays["opt_level"]
        compile_cycles = arrays["compile_cycles"]
        code_size = arrays["code_size"]
        cycles_per_invocation = arrays["cycles_per_invocation"]
        inline_count = arrays["inline_count"]
        self_rate = arrays["self_rate"]
        offsets = arrays["edge_offsets"]
        callees = arrays["edge_callees"]
        rates = arrays["edge_rates"]
        added = 0
        for e in range(len(entry_method)):
            method_id = int(entry_method[e])
            lo = tuple(int(v) for v in lo_rows[e])
            hi = tuple(int(v) for v in hi_rows[e])
            key = (method_id, lo, hi)
            if key in seen:
                continue
            seen.add(key)
            span = slice(int(offsets[e]), int(offsets[e + 1]))
            forward = tuple(
                (int(c), float(r))
                for c, r in zip(callees[span], rates[span])
            )
            version = CompiledMethod(
                method_id=method_id,
                opt_level=int(opt_level[e]),
                code_size=float(code_size[e]),
                compile_cycles=float(compile_cycles[e]),
                cycles_per_invocation=float(cycles_per_invocation[e]),
                residual_forward=forward,
                residual_self_rate=float(self_rate[e]),
                inline_count=int(inline_count[e]),
            )
            self.add(method_id, ParamRegion(lo=lo, hi=hi), version)
            added += 1
        return added

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "MethodPlanCache":
        """A fresh cache reconstructed from :meth:`export_arrays` output."""
        cache = cls(int(arrays["n_methods"][0]))
        cache.load_arrays(arrays)
        return cache
