"""Region-keyed cache of compiled method versions.

One :class:`MethodPlanCache` holds, for a single (program, compilation
context) pair, every distinct compiled version the optimizing compiler
has produced so far, each tagged with the :class:`ParamRegion` of
parameter vectors that reproduce it (see
:class:`repro.jvm.inlining.ParamRegionBuilder`).

Regions from distinct plan expansions are provably disjoint: the
expansion is deterministic, so if a parameter vector satisfied every
comparison constraint of two recorded traces, both traces would be *the*
trace for that vector and hence equal.  A lookup therefore matches at
most one entry per method, which lets the cache answer "which cached
version serves each method under these parameters?" for the whole
program with a single vectorized bound check over all entries.

Besides the :class:`~repro.jvm.compiled.CompiledMethod` objects, the
cache maintains *column arrays* of the per-version scalars the runtime
accounting needs (compile cycles, code size, cycles/invocation, inline
count, residual self-rate) plus per-entry residual-edge arrays, so the
accelerated runtime can do its accounting with NumPy gathers instead of
attribute chasing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.jvm.compiled import CompiledMethod
from repro.jvm.inlining import ParamRegion

__all__ = ["MethodPlanCache"]


class MethodPlanCache:
    """Program-wide store of region-tagged compiled method versions."""

    _INITIAL_CAPACITY = 256

    def __init__(self, n_methods: int) -> None:
        self.n_methods = n_methods
        self._versions: List[CompiledMethod] = []
        self._regions: List[ParamRegion] = []
        # column arrays, parallel to the entry list
        self._compile_cycles: List[float] = []
        self._code_size: List[float] = []
        self._cycles_per_invocation: List[float] = []
        self._inline_count: List[int] = []
        self._self_rate: List[float] = []
        # residual forward edges per entry: (callee_ids, rates), kept as
        # Python lists — the propagation loop consumes them scalar by
        # scalar, where list indexing beats ndarray item access
        self._edges: List[Tuple[List[int], List[float]]] = []
        # dense matcher arrays, written row-by-row at insert time with
        # capacity doubling so match() never rebuilds them from scratch
        cap = self._INITIAL_CAPACITY
        self._LO = np.zeros((cap, 5), dtype=np.int64)
        self._HI = np.zeros((cap, 5), dtype=np.int64)
        self._ENTRY_METHOD = np.zeros(cap, dtype=np.int64)
        # ndarray views of the scalar columns, rebuilt lazily when the
        # entry count changes (the batch accounting gathers from these)
        self._column_cache: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._versions)

    def version(self, entry: int) -> CompiledMethod:
        """The compiled method stored at *entry*."""
        return self._versions[entry]

    def region(self, entry: int) -> ParamRegion:
        """The validity region of *entry*."""
        return self._regions[entry]

    def add(self, method_id: int, region: ParamRegion, version: CompiledMethod) -> int:
        """Insert a version with its region; returns the new entry id."""
        entry = len(self._versions)
        if entry == len(self._ENTRY_METHOD):
            grow = 2 * entry
            self._LO = np.vstack([self._LO, np.zeros((entry, 5), np.int64)])
            self._HI = np.vstack([self._HI, np.zeros((entry, 5), np.int64)])
            self._ENTRY_METHOD = np.concatenate(
                [self._ENTRY_METHOD, np.zeros(entry, np.int64)]
            )
            assert len(self._ENTRY_METHOD) == grow
        self._LO[entry] = region.lo
        self._HI[entry] = region.hi
        self._ENTRY_METHOD[entry] = method_id
        self._versions.append(version)
        self._regions.append(region)
        self._compile_cycles.append(version.compile_cycles)
        self._code_size.append(version.code_size)
        self._cycles_per_invocation.append(version.cycles_per_invocation)
        self._inline_count.append(version.inline_count)
        self._self_rate.append(version.residual_self_rate)
        self._edges.append(
            (
                [c for c, _ in version.residual_forward],
                [r for _, r in version.residual_forward],
            )
        )
        return entry

    # ------------------------------------------------------------------
    def match(self, values: Tuple[int, ...]) -> np.ndarray:
        """Resolve every method's cache entry for a parameter vector.

        Returns an array of length ``n_methods``: the matching entry id
        per method, or -1 where no cached version covers *values*.  One
        ``(entries, 5)`` bound check resolves the whole program.
        """
        resolved = np.full(self.n_methods, -1, dtype=np.int64)
        n = len(self._versions)
        if not n:
            return resolved
        lo = self._LO[:n]
        hi = self._HI[:n]
        p = np.asarray(values, dtype=np.int64)
        mask = ((lo <= p) & (p <= hi)).all(axis=1)
        hits = np.flatnonzero(mask)
        # regions of one method are disjoint, so each method gets at
        # most one hit; later entries would simply overwrite equals
        resolved[self._ENTRY_METHOD[:n][hits]] = hits
        return resolved

    def match_many(self, values_matrix: np.ndarray) -> np.ndarray:
        """Resolve every method's entry for a whole batch of genomes.

        ``values_matrix`` is ``(n_genomes, 5)``; returns an
        ``(n_genomes, n_methods)`` array of entry ids (-1 where no
        cached version covers that genome's vector).

        The bound checks run per dimension over the *distinct* values
        of that gene across the batch: GA generations repeat gene
        values heavily (elites, crossover offspring share parent
        genes), so each dimension compares ``k_d x entries`` values
        with ``k_d`` typically far below the genome count, and the
        per-genome combine is a cheap boolean AND.  The result is
        identical to stacking ``n_genomes`` calls to :meth:`match`.
        """
        p = np.asarray(values_matrix, dtype=np.int64)
        resolved = np.full((len(p), self.n_methods), -1, dtype=np.int64)
        n = len(self._versions)
        if not n or not len(p):
            return resolved
        lo = self._LO[:n]
        hi = self._HI[:n]
        mask: Optional[np.ndarray] = None
        for d in range(p.shape[1]):
            values, inverse = np.unique(p[:, d], return_inverse=True)
            dim_hit = (lo[:, d] <= values[:, None]) & (values[:, None] <= hi[:, d])
            expanded = dim_hit[inverse]  # (genomes, entries)
            mask = expanded if mask is None else (mask & expanded)
        g_idx, hits = np.nonzero(mask)
        resolved[g_idx, self._ENTRY_METHOD[:n][hits]] = hits
        return resolved

    # ------------------------------------------------------------------
    # column access for the vectorized accounting
    # ------------------------------------------------------------------
    def column_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(compile_cycles, code_size, cycles_per_invocation,
        inline_count)`` as ndarray columns over all entries.

        The batch accounting gathers from these with fancy indexing;
        the float conversions are exact (the columns hold Python floats
        produced by the compilers).  Rebuilt only when entries were
        added since the last call.
        """
        cols = self._column_cache
        n = len(self._versions)
        if cols is None or len(cols[0]) != n:
            cols = (
                np.array(self._compile_cycles, dtype=np.float64),
                np.array(self._code_size, dtype=np.float64),
                np.array(self._cycles_per_invocation, dtype=np.float64),
                np.array(self._inline_count, dtype=np.int64),
            )
            self._column_cache = cols
        return cols

    def compile_cycles_of(self, entries: np.ndarray) -> List[float]:
        """Compile-cycle column values for *entries* (Python floats)."""
        cc = self._compile_cycles
        return [cc[e] for e in entries]

    def code_sizes_of(self, entries: np.ndarray) -> np.ndarray:
        """Code-size column values for *entries*."""
        cs = self._code_size
        return np.array([cs[e] for e in entries], dtype=np.float64)

    def cycles_per_invocation_of(self, entries: np.ndarray) -> np.ndarray:
        """Cycles-per-invocation column values for *entries*."""
        cpi = self._cycles_per_invocation
        return np.array([cpi[e] for e in entries], dtype=np.float64)

    def inline_counts_of(self, entries: np.ndarray) -> int:
        """Total inline sites across *entries* (exact integer sum)."""
        ic = self._inline_count
        return sum(ic[e] for e in entries)

    def self_rate(self, entry: int) -> float:
        """Residual self-recursion rate of one entry."""
        return self._self_rate[entry]

    def edges(self, entry: int) -> Tuple[List[int], List[float]]:
        """Residual forward edges ``(callee_ids, rates)`` of one entry."""
        return self._edges[entry]
