"""Vectorized adaptive-scenario kernel: tier 5 of the perf stack.

The *Adapt* scenario is the paper's headline configuration, yet until
this module every adaptive plan signature that missed the report memo
was accounted one at a time: a pure-Python invocation-propagation loop
per representative (:meth:`EvaluationAccelerator._propagate_adaptive`)
followed by per-representative NumPy accounting, and every cold
promoted method was compiled once per genome.  The kernel batches all
three stages across the generation:

* **matrix invocation propagation** — the unresolved representatives of
  a generation are stacked as columns of a ``(methods, representatives)``
  counts matrix and the method-order propagation loop runs *once*.
  Each baseline method's self-recursion scaling and residual-edge
  accumulation become row-wise vector operations; promoted rows, where
  the compiled version (and hence the residual edges) differs per
  column, gather per-column self-rates for one row-wide division and
  flatten their per-entry edge tables into one scatter per row.
* **batched final-version accounting** — baseline column overwrites at
  the promoted positions, live masks, time/size fills, the sequential
  compile-cycle and installed-size reductions, hot-code-size /
  I-cache-pressure factors and the warm-up mix all run as matrix
  expressions over the representative dimension, sharing the Opt path's
  row-wise pressure helper (:func:`repro.perf.batch.batched_cache_pressure`).
* **grouped cold-path compilation** — when several genomes miss on the
  same promoted method, each freshly traced plan is fanned out to every
  still-pending genome its parameter region covers
  (:func:`repro.perf.fastcompile.region_covers`), so one
  :class:`~repro.perf.fastcompile.TracedCompiler` plan is emitted per
  distinct region instead of one per genome, while
  :meth:`MethodPlanCache.add` is fed in exactly the serial reference's
  entry order (genome-major, promotion order within a genome).

**Bitwise identity is the contract.**  Columns are independent: every
floating-point operation a column experiences — the division by
``1 - self_rate``, each ``count * rate`` product, each accumulation into
a callee's count — has the same operands in the same order as the
serial reference's scalar chain for that representative, so each
column's result is the serial result to the last bit.  Inactive columns
ride along as exact no-ops: their counts are ``+0.0``, and both
``0.0 / (1 - r)`` (positive divisor) and ``x + 0.0 * rate`` reproduce
the skipped state bit for bit on the non-negative values the
propagation produces.  The equivalence suite
(``tests/perf/test_adaptive_kernel.py``) enforces this against
``run_reference``, the serial memoized path and the per-representative
batch path across both machine models.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.jvm.inlining import InliningParameters
from repro.perf.fastcompile import region_covers
from repro.telemetry import trace

__all__ = ["AdaptiveBatchKernel"]


class AdaptiveBatchKernel:
    """Batched resolution and accounting for adaptive plan signatures.

    One instance serves one memoizing VM (shared caches, shared stats);
    :class:`~repro.perf.batch.GenerationBatchEvaluator` owns it and
    routes its adaptive work through it.  All methods operate on the
    accelerator's per-program ``_ProgramState`` with the skeleton
    already ensured.
    """

    def __init__(self, vm, accelerator) -> None:
        self.vm = vm
        self.accelerator = accelerator

    # ------------------------------------------------------------------
    # grouped cold-path compilation
    # ------------------------------------------------------------------
    def resolve_missing(
        self,
        state,
        params_list: Sequence[InliningParameters],
        values_matrix: np.ndarray,
        resolved: np.ndarray,
        missing_rows: np.ndarray,
    ) -> None:
        """Compile what the broadcast match left unresolved, grouped.

        Visits the unresolved genomes in population order and their
        promoted methods in promotion order — the serial reference
        order, so :meth:`MethodPlanCache.add` sees the identical entry
        sequence.  After each compile, the traced region's integer
        bounds are broadcast against the whole generation's parameter
        matrix and every covered genome is resolved in place: genomes
        sharing the plan's region never reach the compiler (the serial
        path rediscovered this with a full per-genome re-match).
        """
        stats = self.accelerator.stats
        skeleton = state.skeleton
        cache = state.cache
        traced = self.accelerator._traced(state)
        use_hot = self.vm.scenario.uses_hot_callsite_heuristic
        builds = 0
        for g in missing_rows.tolist():
            row = resolved[g]
            values = params_list[g].as_tuple()
            for mid, level in skeleton.promotions:
                if row[mid] >= 0:
                    continue
                version, region = traced.compile(
                    mid,
                    values,
                    level,
                    hot_sites=skeleton.hot_sites,
                    use_hot_heuristic=use_hot,
                )
                entry = cache.add(mid, region, version)
                builds += 1
                # fan the fresh version out to every genome the region
                # covers; regions of one method are disjoint, so no
                # covered genome can already hold a different entry
                covered = np.flatnonzero(region_covers(region, values_matrix))
                resolved[covered, mid] = entry
                if len(covered) > 1:
                    stats.adaptive_grouped_compiles += 1
                    stats.adaptive_group_covered += len(covered) - 1
        stats.method_builds += builds

    # ------------------------------------------------------------------
    # matrix invocation propagation
    # ------------------------------------------------------------------
    def propagate_matrix(self, state, entry_matrix: np.ndarray) -> np.ndarray:
        """All representatives' invocation counts in one forward pass.

        *entry_matrix* is ``(representatives, promotions)``; the result
        is ``(methods, representatives)``, column ``r`` bitwise equal to
        :meth:`EvaluationAccelerator._propagate_adaptive` for
        representative ``r``.  Methods run in index order exactly once;
        baseline methods (whose residual edges are column-independent)
        propagate with whole-row vector operations, promoted methods
        with a gathered row-wide division and one flattened edge
        scatter per row.

        When a compiled kernel backend is resolved
        (:mod:`repro.perf.native`), the whole propagation runs as one
        compiled call instead — each representative executes the serial
        reference's scalar chain in C/numba doubles, which performs the
        identical IEEE-754 operation sequence, so the result is the
        same bits either way.  A kernel infrastructure failure falls
        back to the numpy path below and disables the backend for this
        accelerator; a genuine missing-version error propagates as the
        reference's :class:`SimulationError`.
        """
        backend = self.accelerator.native_backend()
        if backend is not None:
            try:
                counts = self._propagate_matrix_native(
                    backend, state, entry_matrix
                )
            except SimulationError:
                raise
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                stats = self.accelerator.stats
                stats.native_fallbacks += 1
                self.accelerator.disable_native()
            else:
                stats = self.accelerator.stats
                stats.native_propagations += 1
                stats.native_rows += len(entry_matrix)
                return counts
        program = state.program
        cache = state.cache
        baseline_info = state.baseline_info
        n_methods = len(program)
        n_reps = len(entry_matrix)
        entry_cols = {
            mid: entry_matrix[:, i] for i, mid in enumerate(state.key_mids)
        }
        self_rate_col = cache.self_rate_column()
        edge_count_col = cache.edge_count_column()
        edge_arrays = cache.edge_arrays
        rep_range = np.arange(n_reps)

        counts = np.zeros((n_methods, n_reps), dtype=np.float64)
        counts[program.entry_id] = 1.0
        for mid in range(n_methods):
            c = counts[mid]
            if not c.any():
                # no representative invokes this method: the serial
                # loop skips it column by column, we skip it wholesale
                continue
            entries = entry_cols.get(mid)
            if entries is None:
                info = baseline_info.get(mid)
                if info is None:
                    raise SimulationError(
                        f"method {mid} of {program.name!r} is invoked "
                        "but has no compiled version"
                    )
                self_rate, callees, rates = info
                if self_rate > 0.0:
                    c = c / (1.0 - self_rate)
                    counts[mid] = c
                for callee, rate in zip(callees, rates):
                    counts[callee] += c * rate
                continue
            # promoted method: the compiled version — and hence the
            # residual edges — differs per column.  The self-recursion
            # scaling gathers each column's rate and divides the whole
            # row at once (x / 1.0 is exact where the rate is zero,
            # 0.0 / (1 - r) is +0.0 for inactive columns); the edge
            # contributions of every column are flattened into one
            # (callee, column, delta) scatter.  ``np.add.at`` applies
            # the pairs unbuffered in the given column-major, edge-order
            # sequence, so a cell hit twice by one caller (baseline-style
            # duplicate call sites) accumulates in the reference's order.
            c = c / (1.0 - self_rate_col[entries])
            counts[mid] = c
            edge_counts = edge_count_col[entries]
            if not edge_counts.any():
                continue
            callee_parts = []
            rate_parts = []
            for e in entries.tolist():
                callees, rates = edge_arrays(e)
                callee_parts.append(callees)
                rate_parts.append(rates)
            col_idx = np.repeat(rep_range, edge_counts)
            callee_idx = np.concatenate(callee_parts)
            rates_flat = np.concatenate(rate_parts)
            np.add.at(counts, (callee_idx, col_idx), c[col_idx] * rates_flat)
        return counts

    def _propagate_matrix_native(
        self, backend, state, entry_matrix: np.ndarray
    ) -> np.ndarray:
        """Run the matrix propagation through the compiled backend.

        Prepares (once per program state) the flat arrays the kernel
        walks — the per-method promoted-slot map and the baseline
        residual-edge CSR — and returns the ``(methods,
        representatives)`` view of the kernel's row-major output.
        """
        program = state.program
        cache = state.cache
        ctx = state.native_ctx
        if ctx is None:
            n_methods = len(program)
            promoted_slot = np.full(n_methods, -1, dtype=np.int64)
            promoted_slot[state.key_mids_array] = np.arange(
                len(state.key_mids), dtype=np.int64
            )
            base_present = np.zeros(n_methods, dtype=np.uint8)
            base_self_rate = np.zeros(n_methods, dtype=np.float64)
            base_offsets = np.zeros(n_methods + 1, dtype=np.int64)
            callee_parts: list = []
            rate_parts: list = []
            total = 0
            for mid in range(n_methods):
                info = state.baseline_info.get(mid)
                if info is not None:
                    self_rate, callees, rates = info
                    base_present[mid] = 1
                    base_self_rate[mid] = self_rate
                    callee_parts.extend(callees)
                    rate_parts.extend(rates)
                    total += len(callees)
                base_offsets[mid + 1] = total
            ctx = (
                promoted_slot,
                base_present,
                base_self_rate,
                base_offsets,
                np.array(callee_parts, dtype=np.int64),
                np.array(rate_parts, dtype=np.float64),
            )
            state.native_ctx = ctx
        (
            promoted_slot,
            base_present,
            base_self_rate,
            base_offsets,
            base_callees,
            base_rates,
        ) = ctx
        entry_offsets, entry_callees, entry_rates = cache.edge_csr()
        counts = backend.adaptive_propagate_blocked(
            entry_matrix,
            program.entry_id,
            promoted_slot,
            cache.self_rate_column(),
            entry_offsets,
            entry_callees,
            entry_rates,
            base_present,
            base_self_rate,
            base_offsets,
            base_callees,
            base_rates,
            program_name=program.name,
        )
        return counts.T

    # ------------------------------------------------------------------
    # batched final-version accounting
    # ------------------------------------------------------------------
    def account(
        self,
        state,
        rep_rows: np.ndarray,
        rep_params: Sequence[InliningParameters],
    ) -> List[object]:
        """Reports for all miss representatives as matrix expressions.

        Mirrors :meth:`EvaluationAccelerator._account_adaptive` with the
        representative dimension vectorized; every reduction that the
        reference performs sequentially (compile cycles, installed
        size) runs as a strictly sequential ``cumsum`` over dense rows,
        where the interleaved zeros of never-invoked methods are exact
        no-ops on the non-negative partial sums.
        """
        with trace(
            "perf.adaptive.account",
            program=state.program.name,
            columns=len(rep_rows),
        ):
            return self._account(state, rep_rows, rep_params)

    def _account(
        self,
        state,
        rep_rows: np.ndarray,
        rep_params: Sequence[InliningParameters],
    ) -> List[object]:
        from repro.jvm.runtime import ExecutionReport
        from repro.perf.batch import batched_cache_pressure

        vm = self.vm
        acc = self.accelerator
        program = state.program
        skeleton = state.skeleton
        cache = state.cache
        n_methods = len(program)
        n_reps = len(rep_rows)
        entry_matrix = np.ascontiguousarray(rep_rows[:, state.key_mids_array])

        acc.stats.adaptive_matrix_propagations += 1
        acc.stats.adaptive_matrix_columns += n_reps
        counts = self.propagate_matrix(state, entry_matrix)

        # final-version columns: the baseline values broadcast across
        # representatives, overwritten at the promoted positions from
        # the cache's column arrays (positions are distinct, so the
        # reference's final_versions iteration order is immaterial)
        cc_col, size_col, cpi_col, inline_col = cache.column_arrays()
        pos = state.promoted_pos
        m = len(state.invoked)
        cpi = np.empty((n_reps, m), dtype=np.float64)
        cpi[:] = state.baseline_cpi
        sizes_col = np.empty((n_reps, m), dtype=np.float64)
        sizes_col[:] = state.baseline_sizes
        inline_mat = np.empty((n_reps, m), dtype=np.int64)
        inline_mat[:] = state.baseline_inline
        cpi[:, pos] = cpi_col[entry_matrix]
        sizes_col[:, pos] = size_col[entry_matrix]
        inline_mat[:, pos] = inline_col[entry_matrix]

        counts_inv = counts[state.invoked]  # (m, n_reps)
        live = (counts_inv > 0.0).T  # (n_reps, m)
        times = np.zeros((n_reps, n_methods), dtype=np.float64)
        times[:, state.invoked] = np.where(live, counts_inv.T * cpi, 0.0)
        sizes_dense = np.zeros((n_reps, n_methods), dtype=np.float64)
        sizes_dense[:, state.invoked] = np.where(live, sizes_col, 0.0)
        inline_sites = np.where(live, inline_mat, 0).sum(axis=1)

        totals, hots, factors = batched_cache_pressure(
            times, sizes_dense, vm.cost_model, vm.machine
        )
        running = totals * factors
        installed = sizes_dense.cumsum(axis=1)[:, -1]

        # compile cycles: the baseline total, then each promotion's
        # compile cost added in promotion order — cumsum keeps the
        # reference's left-to-right accumulation
        base = np.full((n_reps, 1), skeleton.baseline_compile_cycles)
        compile_cycles = np.concatenate(
            [base, cc_col[entry_matrix]], axis=1
        ).cumsum(axis=1)[:, -1]

        warmup = vm.cost_model.adaptive_mix_fraction
        baseline_running = skeleton.profile.total_time
        first_iter = warmup * baseline_running + (1.0 - warmup) * running
        first_iter = first_iter * (1.0 + vm.cost_model.sampling_overhead)

        n_baseline = len(skeleton.baseline_versions)
        n_promoted = len(skeleton.promotions)
        reports: List[object] = []
        for r in range(n_reps):
            reports.append(
                ExecutionReport(
                    benchmark=program.name,
                    scenario=vm.scenario.name,
                    machine=vm.machine,
                    params=rep_params[r],
                    running_cycles=float(running[r]),
                    compile_cycles=float(compile_cycles[r]),
                    first_iteration_exec_cycles=float(first_iter[r]),
                    icache_factor=float(factors[r]),
                    hot_code_size=float(hots[r]),
                    installed_code_size=float(installed[r]),
                    methods_compiled_baseline=n_baseline,
                    methods_compiled_opt=n_promoted,
                    inline_sites=int(inline_sites[r]),
                )
            )
        return reports
