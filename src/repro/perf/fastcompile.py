"""Fused traced compilation for the evaluation accelerator.

:meth:`OptimizingCompiler.compile_traced` is readable but slow: plan
expansion allocates an :class:`~repro.jvm.inlining.InlinedBody` or
:class:`~repro.jvm.inlining.ResidualCall` per site, dispatches an
:class:`~repro.jvm.inlining.InlineDecision` enum per decision, and the
region builder adds two method calls per comparison — all per cache
miss, on exactly the large methods whose narrow parameter regions miss
most often.

:class:`TracedCompiler` fuses expansion, region tracking and
compilation into one loop over precomputed per-program tables (callee
sizes and work as Python floats, reversed site rows, the inline bonus
by depth).  **Bitwise identity is the contract**: every floating-point
operation happens in the same order with the same operands as the
reference path — expansion accumulates ``expanded_size`` site by site,
absorbed work accumulates in inlined-body order, residual rates in
residual order, and the final cycle expression reproduces
:meth:`OptimizingCompiler.compile` token for token.  The equivalence
suite (``tests/perf/``) enforces this against ``run_reference`` and
``compile_traced``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.jvm.callgraph import Program
from repro.jvm.compiled import CompiledMethod
from repro.jvm.inlining import HARD_DEPTH_LIMIT, ParamRegion, _REGION_UNBOUNDED
from repro.jvm.methods import CALL_SEQUENCE_SIZE

__all__ = ["TracedCompiler", "region_covers"]

_EMPTY_KEY = frozenset()


def region_covers(region: ParamRegion, values_matrix: np.ndarray) -> np.ndarray:
    """Which rows of ``(n, 5)`` *values_matrix* fall inside *region*.

    The region's bounds come straight from the compile loop's integer
    comparison tables, so one broadcast bound check decides, for a whole
    batch of parameter vectors at once, which of them reproduce the
    traced plan.  The grouped cold-compilation path uses this to fan a
    freshly compiled version out to every pending genome it covers
    instead of re-expanding the plan per genome.
    """
    lo = np.asarray(region.lo, dtype=np.int64)
    hi = np.asarray(region.hi, dtype=np.int64)
    p = np.asarray(values_matrix, dtype=np.int64)
    return ((lo <= p) & (p <= hi)).all(axis=1)


class TracedCompiler:
    """Per-program fused (compile + region trace) engine.

    One instance serves one :class:`Program` under one machine model and
    cost model; per-level constants are derived lazily.
    """

    def __init__(self, program: Program, machine, cost_model) -> None:
        self.program = program
        self.machine = machine
        self.cost_model = cost_model
        # Python-float mirrors of the numpy columns: scalar reads from a
        # list are several times cheaper than ndarray item access, and
        # float(np.float64(x)) == x exactly.
        self._sizes: List[float] = [float(s) for s in program.sizes]
        self._work: List[float] = [float(w) for w in program.work]
        # integer comparison tables: for integer p, ``size > p`` iff
        # ``ceil(size) > p`` and ``size < p`` iff ``floor(size) < p``,
        # so the cascade runs on int compares and the region bounds come
        # straight from these tables instead of per-site ceil/floor
        self._ceil_sizes: List[int] = [math.ceil(s) for s in self._sizes]
        self._floor_sizes: List[int] = [math.floor(s) for s in self._sizes]
        # per-callee expansion growth: max(size - call sequence, 1.0),
        # the same float value the per-site expression produces
        self._growth: List[float] = [
            g if (g := s - CALL_SEQUENCE_SIZE) > 1.0 else 1.0 for s in self._sizes
        ]
        self._work_units: List[float] = [
            float(program.method(mid).work_units) for mid in range(len(program))
        ]
        # site rows per method in source order: (callee_id,
        # calls_per_invocation, (caller_id, site_index)); the compile
        # loop walks them with suspended frames in the same depth-first
        # preorder as build_inline_plan's explicit stack
        self._site_rows: List[Tuple[Tuple[int, float, Tuple[int, int]], ...]] = [
            tuple(
                (site.callee_id, float(site.calls_per_invocation),
                 (site.caller_id, site.site_index))
                for site in program.sites_of(mid)
            )
            for mid in range(len(program))
        ]
        # (1 - inline bonus) by depth; sites deeper than HARD_DEPTH_LIMIT
        # are never inlined, so the table is provably large enough
        self._bonus_factor: List[float] = [
            1.0 - cost_model.inline_bonus_at_depth(d)
            for d in range(HARD_DEPTH_LIMIT + 2)
        ]
        self._call_cost = (
            machine.call_overhead_cycles
            + cost_model.call_mispredict_weight * machine.branch_misprediction_cycles
        )
        self._per_level: Dict[int, Tuple[float, float]] = {}
        # suspended-frame arena: descent frames live in preallocated
        # parallel slot lists indexed by a stack pointer instead of a
        # fresh 5-tuple per descent.  The stack can never grow past
        # HARD_DEPTH_LIMIT + 1 frames (descent stops once depth exceeds
        # the limit), so the slots are provably sufficient and reused
        # across every compile() call this instance serves.
        slots = HARD_DEPTH_LIMIT + 2
        self._arena_depth: List[int] = [0] * slots
        self._arena_mult: List[float] = [0.0] * slots
        self._arena_rows: List[Tuple] = [()] * slots
        self._arena_i: List[int] = [0] * slots
        self._arena_n: List[int] = [0] * slots
        self._forward: Dict[int, float] = {}

    def _level_consts(self, level: int) -> Tuple[float, float]:
        consts = self._per_level.get(level)
        if consts is None:
            consts = (
                self.machine.compile_rate(level),
                self.machine.speed_factor(level),
            )
            self._per_level[level] = consts
        return consts

    # ------------------------------------------------------------------
    def compile(
        self,
        method_id: int,
        values: Tuple[int, int, int, int, int],
        level: int,
        hot_sites: Optional[FrozenSet[Tuple[int, int]]] = None,
        use_hot_heuristic: bool = False,
    ) -> Tuple[CompiledMethod, ParamRegion]:
        """Bitwise equivalent of ``OptimizingCompiler.compile_traced``."""
        sizes = self._sizes
        work = self._work
        site_rows = self._site_rows
        bonus_factor = self._bonus_factor
        ceil_sizes = self._ceil_sizes
        floor_sizes = self._floor_sizes
        growth = self._growth
        depth_limit = HARD_DEPTH_LIMIT
        p0, p1, p2, p3, p4 = values
        hot = hot_sites if (use_hot_heuristic and hot_sites) else _EMPTY_KEY
        has_hot = bool(hot)

        lo0 = lo1 = lo2 = lo4 = 0
        hi0 = hi1 = hi2 = hi4 = _REGION_UNBOUNDED
        # deferred p3 bounds: ceil is monotonic, so the tightest bounds
        # come from the extreme ``expanded`` values seen at p3 tests —
        # max over failed tests (lower bound), min over passed tests
        # (upper bound) — converted to integers once at the end
        lo3_expanded = -1.0
        hi3_expanded = math.inf

        expanded = sizes[method_id]
        absorbed = 0.0
        n_inlined = 0
        call_rate = 0.0
        self_rate = 0.0
        forward = self._forward
        if forward:
            forward.clear()

        # depth-first preorder over the inline tree with suspended
        # frames: on descent the current (depth, mult, rows, cursor) is
        # stored into the arena slot at the stack pointer and the
        # callee's sites take over — slot writes into the preallocated
        # parallel lists instead of a heap tuple per descent
        a_depth = self._arena_depth
        a_mult = self._arena_mult
        a_rows = self._arena_rows
        a_i = self._arena_i
        a_n = self._arena_n
        sp = 0
        depth = 1
        mult = 1.0
        rows = site_rows[method_id]
        i = 0
        n = len(rows)
        while True:
            if i == n:
                if not sp:
                    break
                sp -= 1
                depth = a_depth[sp]
                mult = a_mult[sp]
                rows = a_rows[sp]
                i = a_i[sp]
                n = a_n[sp]
                continue
            callee, per_invocation, key = rows[i]
            i += 1
            csc = ceil_sizes[callee]
            rate = mult * per_invocation

            # the decision cascade mirrors Figures 3/4 with the region
            # constraint folded into each taken branch; size-vs-param
            # compares run on the integer ceil/floor tables
            if depth > depth_limit:
                inline = False  # implementation guard: unconstrained
            elif has_hot and depth == 1 and key in hot:
                if csc > p4:  # size > p4
                    bound = csc - 1
                    if bound < hi4:
                        hi4 = bound
                    inline = False
                else:
                    if csc > lo4:
                        lo4 = csc
                    inline = True
            elif csc > p0:  # size > p0
                bound = csc - 1
                if bound < hi0:
                    hi0 = bound
                inline = False
            else:
                if csc > lo0:
                    lo0 = csc
                csf = floor_sizes[callee]
                if csf < p1:  # size < p1
                    bound = csf + 1
                    if bound > lo1:
                        lo1 = bound
                    inline = True
                else:
                    if csf < hi1:
                        hi1 = csf
                    if depth > p2:
                        bound = depth - 1
                        if bound < hi2:
                            hi2 = bound
                        inline = False
                    else:
                        if depth > lo2:
                            lo2 = depth
                        if expanded > p3:
                            if expanded < hi3_expanded:
                                hi3_expanded = expanded
                            inline = False
                        else:
                            if expanded > lo3_expanded:
                                lo3_expanded = expanded
                            inline = True

            if inline:
                absorbed += rate * work[callee] * bonus_factor[depth]
                n_inlined += 1
                expanded += growth[callee]
                child_rows = site_rows[callee]
                if child_rows:
                    a_depth[sp] = depth
                    a_mult[sp] = mult
                    a_rows[sp] = rows
                    a_i[sp] = i
                    a_n[sp] = n
                    sp += 1
                    depth += 1
                    mult = rate
                    rows = child_rows
                    i = 0
                    n = len(rows)
            else:
                call_rate += rate
                if callee == method_id:
                    self_rate += rate
                else:
                    forward[callee] = forward.get(callee, 0.0) + rate

        lo3 = math.ceil(lo3_expanded) if lo3_expanded >= 0.0 else 0
        hi3 = (
            math.ceil(hi3_expanded) - 1
            if hi3_expanded != math.inf
            else _REGION_UNBOUNDED
        )

        cm = self.cost_model
        machine = self.machine
        compile_rate, speed = self._level_consts(level)
        code_size = expanded * cm.opt_code_density
        superlinear = 1.0 + expanded / cm.compile_superlinear_scale
        compile_cycles = compile_rate * expanded * superlinear
        cycles = (
            (self._work_units[method_id] + absorbed)
            * speed
            * cm.work_cycle_scale
            * machine.app_cycle_factor
            + call_rate * self._call_cost
        )

        version = CompiledMethod(
            method_id=method_id,
            opt_level=level,
            code_size=code_size,
            compile_cycles=compile_cycles,
            cycles_per_invocation=cycles,
            residual_forward=(
                # keys are unique, so sorting them alone orders the
                # items identically to sorted(forward.items()) — and
                # int keys take sort's fast path, skipping the tuple
                # comparisons that dominated this call
                tuple((mid, forward[mid]) for mid in sorted(forward))
                if len(forward) > 1
                else tuple(forward.items())
            ),
            residual_self_rate=self_rate,
            inline_count=n_inlined,
        )
        region = ParamRegion(
            lo=(lo0, lo1, lo2, lo3, lo4), hi=(hi0, hi1, hi2, hi3, hi4)
        )
        return version, region
