"""Evaluation-acceleration subsystem.

The GA's dominant cost is fitness evaluation: every genome means
re-running every training benchmark through the simulated VM, and the
seed implementation recompiled every reachable method with a fresh
recursive inline-plan expansion each time.  This package removes that
cost with six cooperating tiers (see ``docs/PERFORMANCE.md``):

1. **Plan-signature memoization** (:mod:`repro.perf.plancache`) —
   compiled methods are cached per *parameter region*: the axis-aligned
   box of parameter vectors for which the plan expansion's threshold
   comparisons all resolve the same way.  Genomes that cross no decision
   boundary share compilation work across the population and across
   generations.
2. **Vectorized run accounting** (:mod:`repro.perf.engine`) — per-method
   Python loops of the seed runtime are replaced with NumPy operations
   over a column store of cached method versions, and whole
   :class:`~repro.jvm.runtime.ExecutionReport` objects are memoized by
   the program-level plan signature.
3. **Persistent evaluation store** (:mod:`repro.perf.store`) — an
   on-disk genome -> fitness store keyed by an evaluation-context
   fingerprint, shared by the fitness cache, multiprocess workers,
   checkpoint resume and the benchmark scripts, so no configuration is
   ever simulated twice across process restarts.
4. **Generation batching** (:mod:`repro.perf.batch`) — whole GA
   generations resolve against the region cache in one broadcast match,
   deduplicate by plan signature across genomes before any simulation,
   and account the residual representatives as (genomes x methods)
   matrices.
5. **Adaptive batch kernel** (:mod:`repro.perf.adaptivekernel`) — under
   *Adapt*, the unresolved representatives of a generation become
   columns of one (methods x representatives) matrix propagation, the
   final-version accounting runs as matrix expressions over the
   representative dimension, and cold promoted methods are compiled
   once per distinct parameter region with the traced plan fanned out
   to every genome the region covers.
6. **Zero-copy transport and compiled kernels** (:mod:`repro.perf.shm`,
   :mod:`repro.perf.native`) — workload archives and genome/result
   shuttles live in named ``multiprocessing.shared_memory`` segments
   that pool workers map read-only instead of rebuilding after a
   pickle, and the serial-by-construction invocation propagation runs
   as a compiled kernel (numba, or a ``cc``-built C extension) chosen
   through the graceful-degradation ladder compiled -> numpy -> serial
   memoized -> reference; a missing compiler never breaks a run.

All tiers are bitwise-exact: the accelerated paths reproduce the seed
implementation's floating-point results to the last bit (enforced by
``tests/perf/test_equivalence.py``).
"""

from repro.perf.adaptivekernel import AdaptiveBatchKernel
from repro.perf.batch import GenerationBatchEvaluator, batched_cache_pressure
from repro.perf.engine import AcceleratorStats, EvaluationAccelerator, aggregate_stats
from repro.perf.plancache import MethodPlanCache
from repro.perf.shm import (
    GenomeShuttle,
    SharedArraySegment,
    WorkloadArchive,
    shared_memory_supported,
)
from repro.perf.store import EvaluationStore, evaluation_context_key

__all__ = [
    "AcceleratorStats",
    "AdaptiveBatchKernel",
    "EvaluationAccelerator",
    "GenerationBatchEvaluator",
    "GenomeShuttle",
    "MethodPlanCache",
    "SharedArraySegment",
    "WorkloadArchive",
    "EvaluationStore",
    "evaluation_context_key",
    "aggregate_stats",
    "batched_cache_pressure",
    "shared_memory_supported",
]
