"""Zero-copy shared-memory interning for pool workers.

Campaign pool workers historically rebuilt everything on the far side
of a pickle: each spawned worker re-generated the workload programs
and re-derived its caches (see ``repro/jvm/runtime.py`` —
``VirtualMachine.__setstate__`` rebuilds the accelerator), and every
``map`` call re-pickled genome lists and fitness lists through the
pool's pipes.  This module moves the bulk payloads into
``multiprocessing.shared_memory`` segments that workers map read-only:

* :class:`SharedArraySegment` — one named segment holding several
  named numpy arrays behind a tiny self-describing header, with
  crash-safe lifecycle (owner-side atexit unlink; attach-side
  resource-tracker unregistration so a SIGKILLed worker can never
  unlink a segment it does not own);
* :class:`WorkloadArchive` — the campaign's training programs interned
  as flat arrays (method tables, instruction mixes, call sites, name
  blobs); workers attach and reconstruct
  :class:`~repro.jvm.callgraph.Program` objects whose fingerprints are
  identical to the generator's, so evaluation-store context keys are
  unaffected;
* :class:`GenomeShuttle` — a generation's genomes packed as one int64
  matrix plus a float64 result vector that workers fill in place, so
  batched task submission ships ``(segment, lo, hi)`` ranges instead
  of pickled genome lists.

Telemetry: segment creation and attachment emit ``shm.create`` /
``shm.attach`` events and feed the ``repro_shm_attach_total`` and
``repro_ipc_bytes_total`` metric families (see
``docs/OBSERVABILITY.md``); all of it is no-op safe when telemetry is
off.

Graceful degradation, as everywhere in the perf stack: every consumer
of this module falls back to the pickle path when shared memory is
unavailable (platform without ``/dev/shm``, segment vanished, ragged
genomes) — shm is a throughput optimization, never a correctness
dependency.
"""

from __future__ import annotations

import atexit
import json
import secrets
import struct
import logging
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GAError

__all__ = [
    "SharedArraySegment",
    "WorkloadArchive",
    "GenomeShuttle",
    "PlanArchive",
    "PlanArchiveReader",
    "shared_memory_supported",
]

_log = logging.getLogger("repro.perf.shm")

#: prefix of every segment this repo creates (leak checks key on it)
SEGMENT_PREFIX = "repro-"

#: payload alignment inside a segment
_ALIGN = 64

_HEADER_LEN = struct.Struct("<Q")


def shared_memory_supported() -> bool:
    """True when named shared memory works on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return False
    return True


def _emit_shm(event: str, segment: str, nbytes: int) -> None:
    """Telemetry for a segment lifecycle step (no-op when off)."""
    try:
        from repro.telemetry import emit, get_session

        emit(event, segment=segment, bytes=int(nbytes))
        session = get_session()
        if session is not None:
            registry = session.registry
            # bytes moved through shm count on both sides: the owner
            # interning a segment and every worker mapping it (worker
            # registries are per-process; the coordinator's export
            # reflects at least its own publications)
            registry.counter(
                "repro_ipc_bytes_total", transport="shm"
            ).inc(int(nbytes))
            if event == "shm.attach":
                registry.counter("repro_shm_attach_total").inc()
    except Exception:  # pragma: no cover - telemetry must never break a run
        pass


#: segments owned (created) by this process, unlinked at interpreter
#: exit if still alive — a crashed coordinator additionally relies on
#: the stdlib resource tracker, which unlinks registered segments when
#: the owning process dies without cleanup
_OWNED: Dict[str, "SharedArraySegment"] = {}


def _cleanup_owned() -> None:  # pragma: no cover - exit hook
    for segment in list(_OWNED.values()):
        try:
            segment.unlink()
        except Exception:
            pass


atexit.register(_cleanup_owned)


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArraySegment:
    """A named shared-memory segment holding named numpy arrays.

    Layout: an 8-byte little-endian header length, a JSON header
    mapping array names to ``(dtype, shape, offset)``, then the array
    payloads, each 64-byte aligned.  ``create`` copies the given
    arrays in and owns the segment (close + unlink); ``attach`` maps
    an existing segment and exposes zero-copy ndarray views —
    read-only by default, so a worker bug cannot corrupt a shared
    plan table.
    """

    def __init__(self, shm, arrays: Dict[str, np.ndarray], owner: bool) -> None:
        self._shm = shm
        self.arrays = arrays
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: Dict[str, np.ndarray], name: Optional[str] = None
    ) -> "SharedArraySegment":
        """Create a segment containing copies of *arrays* (owner side)."""
        from multiprocessing import shared_memory

        header: Dict[str, list] = {}
        offset = 0
        prepared: Dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            prepared[key] = array
            offset = _align(offset)
            header[key] = [array.dtype.str, list(array.shape), offset]
            offset += array.nbytes
        blob = json.dumps(header, sort_keys=True).encode("ascii")
        payload_base = _align(_HEADER_LEN.size + len(blob))
        total = max(1, payload_base + offset)
        if name is None:
            name = f"{SEGMENT_PREFIX}{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        shm.buf[: _HEADER_LEN.size] = _HEADER_LEN.pack(len(blob))
        shm.buf[_HEADER_LEN.size : _HEADER_LEN.size + len(blob)] = blob
        views: Dict[str, np.ndarray] = {}
        for key, array in prepared.items():
            dtype, shape, rel = header[key]
            view = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=payload_base + rel
            )
            view[...] = array
            views[key] = view
        segment = cls(shm, views, owner=True)
        _OWNED[segment.name] = segment
        _emit_shm("shm.create", segment.name, total)
        return segment

    @classmethod
    def attach(cls, name: str, readonly: bool = True) -> "SharedArraySegment":
        """Map an existing segment by name (non-owner side).

        On 3.13+ the attachment passes ``track=False`` so it adds no
        resource-tracker registration of its own.  On older Pythons the
        constructor re-registers the name, which is harmless: spawned
        pool workers share the coordinator's tracker process, whose
        cache is a per-name set — the worker's add is idempotent
        against the owner's registration, and only the owner's
        ``unlink`` removes it.  Unregistering here instead would strip
        the owner's crash-safety net (and make its later unlink
        double-unregister, spamming KeyErrors in the tracker).
        """
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # track= arrived in 3.13
            shm = shared_memory.SharedMemory(name=name)
        (blob_len,) = _HEADER_LEN.unpack_from(shm.buf, 0)
        blob = bytes(shm.buf[_HEADER_LEN.size : _HEADER_LEN.size + blob_len])
        header = json.loads(blob.decode("ascii"))
        payload_base = _align(_HEADER_LEN.size + blob_len)
        views: Dict[str, np.ndarray] = {}
        for key, (dtype, shape, rel) in header.items():
            view = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=payload_base + rel
            )
            if readonly:
                view.flags.writeable = False
            views[key] = view
        segment = cls(shm, views, owner=False)
        _emit_shm("shm.attach", segment.name, shm.size)
        return segment

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live views keep the map
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only); idempotent."""
        if not self.owner:
            raise GAError(f"segment {self.name!r} is attached, not owned")
        name = self.name
        self.close()
        _OWNED.pop(name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArraySegment":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()


# ----------------------------------------------------------------------
# workload interning
# ----------------------------------------------------------------------
def _pack_strings(strings: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated utf-8 blob + offsets for a string column."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(e) for e in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def _unpack_strings(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    raw = blob.tobytes()
    return [
        raw[offsets[i] : offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


class WorkloadArchive:
    """Training programs interned as flat arrays in one shm segment.

    ``publish(programs)`` (coordinator side) flattens every program's
    method table — loop weights, instruction-mix histograms over the
    fixed :class:`~repro.jvm.bytecode.InstructionKind` alphabet, names
    — and call-site table into per-field arrays with per-program offset
    columns.  ``attach(name)`` (worker side) maps the segment and
    :meth:`programs` reconstructs the
    :class:`~repro.jvm.callgraph.Program` objects from the mapped
    arrays; reconstruction is exact (``InstructionMix.from_mapping``
    canonicalizes kind order the same way the generator does), so the
    rebuilt programs' fingerprints — and therefore every persistent
    evaluation-store context key — equal the originals'.
    """

    def __init__(self, segment: SharedArraySegment) -> None:
        self.segment = segment
        self._programs: Optional[List] = None

    @property
    def name(self) -> str:
        return self.segment.name

    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls, programs: Sequence, name: Optional[str] = None
    ) -> "WorkloadArchive":
        """Intern *programs* into a fresh owned segment.

        *name* pins the segment name — used to republish an archive
        that vanished under a live campaign, so payloads already
        carrying the name keep resolving.
        """
        from repro.jvm.bytecode import InstructionKind

        kinds = tuple(InstructionKind)
        kind_pos = {kind: i for i, kind in enumerate(kinds)}

        program_entry = np.array(
            [p.entry_id for p in programs], dtype=np.int64
        )
        method_offsets = np.zeros(len(programs) + 1, dtype=np.int64)
        site_offsets = np.zeros(len(programs) + 1, dtype=np.int64)
        if programs:
            np.cumsum([len(p.methods) for p in programs], out=method_offsets[1:])
            np.cumsum([len(p.call_sites) for p in programs], out=site_offsets[1:])

        n_methods = int(method_offsets[-1])
        n_sites = int(site_offsets[-1])
        loop_weight = np.empty(n_methods, dtype=np.float64)
        mix = np.zeros((n_methods, len(kinds)), dtype=np.int64)
        method_names: List[str] = []
        site_cols = np.empty((n_sites, 3), dtype=np.int64)
        site_calls = np.empty(n_sites, dtype=np.float64)

        m = 0
        s = 0
        for program in programs:
            for method in program.methods:
                loop_weight[m] = method.body.loop_weight
                for kind, count in method.body.mix:
                    mix[m, kind_pos[kind]] = count
                method_names.append(method.name)
                m += 1
            for site in program.call_sites:
                site_cols[s] = (site.caller_id, site.callee_id, site.site_index)
                site_calls[s] = site.calls_per_invocation
                s += 1

        program_name_blob, program_name_offsets = _pack_strings(
            [p.name for p in programs]
        )
        method_name_blob, method_name_offsets = _pack_strings(method_names)

        segment = SharedArraySegment.create(
            {
                "program_entry": program_entry,
                "program_method_offsets": method_offsets,
                "program_site_offsets": site_offsets,
                "program_name_blob": program_name_blob,
                "program_name_offsets": program_name_offsets,
                "method_loop_weight": loop_weight,
                "method_mix": mix,
                "method_name_blob": method_name_blob,
                "method_name_offsets": method_name_offsets,
                "site_cols": site_cols,
                "site_calls": site_calls,
            },
            name=name,
        )
        return cls(segment)

    @classmethod
    def attach(cls, name: str) -> "WorkloadArchive":
        """Map a published archive by segment name (worker side)."""
        return cls(SharedArraySegment.attach(name, readonly=True))

    # ------------------------------------------------------------------
    def programs(self) -> List:
        """Reconstruct (and memoize) the interned programs."""
        if self._programs is not None:
            return self._programs
        from repro.jvm.bytecode import InstructionKind, InstructionMix, MethodBody
        from repro.jvm.callgraph import CallSite, Program
        from repro.jvm.methods import MethodInfo

        kinds = tuple(InstructionKind)
        a = self.segment.arrays
        program_names = _unpack_strings(
            a["program_name_blob"], a["program_name_offsets"]
        )
        method_names = _unpack_strings(
            a["method_name_blob"], a["method_name_offsets"]
        )
        method_offsets = a["program_method_offsets"]
        site_offsets = a["program_site_offsets"]
        programs: List[Program] = []
        for p, name in enumerate(program_names):
            m_lo, m_hi = int(method_offsets[p]), int(method_offsets[p + 1])
            methods = []
            for m in range(m_lo, m_hi):
                row = a["method_mix"][m]
                mapping = {
                    kind: int(row[i]) for i, kind in enumerate(kinds) if row[i]
                }
                body = MethodBody(
                    mix=InstructionMix.from_mapping(mapping),
                    loop_weight=float(a["method_loop_weight"][m]),
                )
                methods.append(
                    MethodInfo(
                        method_id=m - m_lo, name=method_names[m], body=body
                    )
                )
            s_lo, s_hi = int(site_offsets[p]), int(site_offsets[p + 1])
            sites = [
                CallSite(
                    caller_id=int(a["site_cols"][s, 0]),
                    callee_id=int(a["site_cols"][s, 1]),
                    site_index=int(a["site_cols"][s, 2]),
                    calls_per_invocation=float(a["site_calls"][s]),
                )
                for s in range(s_lo, s_hi)
            ]
            programs.append(
                Program(
                    name=name,
                    methods=methods,
                    call_sites=sites,
                    entry_id=int(a["program_entry"][p]),
                )
            )
        self._programs = programs
        return programs

    def close(self) -> None:
        self._programs = None
        self.segment.close()

    def unlink(self) -> None:
        self._programs = None
        self.segment.unlink()


# ----------------------------------------------------------------------
# plan-cache interning
# ----------------------------------------------------------------------
def _emit_plan(event: str, **fields) -> None:
    """Telemetry for a plan-archive lifecycle step (no-op when off)."""
    try:
        from repro.telemetry import emit

        emit(event, **fields)
    except Exception:  # pragma: no cover - telemetry must never break a run
        pass


class PlanArchive:
    """Versioned shm publication of compiled plan caches (owner side).

    The coordinator interns every program's
    :class:`~repro.perf.plancache.MethodPlanCache` — exported as flat
    arrays by :meth:`~repro.perf.plancache.MethodPlanCache.export_arrays`
    and keyed by an opaque plan-key string — so campaign workers
    warm-start from the coordinator's compiled versions instead of
    recompiling them per process.

    Consistency protocol (readers never see a torn snapshot):

    * a tiny *directory* segment, named ``base``, holds the current
      epoch number and is the only segment updated in place;
    * each publication writes a fresh immutable *data* segment named
      ``base-e{N}`` containing every cache's arrays plus a
      ``__commit__`` stamp written after the payload, then advances the
      directory epoch to ``N``, then unlinks epoch ``N-1`` (existing
      reader mappings of the old epoch stay valid — POSIX unlink only
      removes the name);
    * readers resolve the directory epoch, attach ``base-e{N}``, and
      verify the commit stamp, retrying when a republish races the
      attach (``FileNotFoundError`` or a stale stamp).
    """

    def __init__(self, directory: SharedArraySegment, base: str) -> None:
        self._directory = directory
        self.base = base
        self._data: Optional[SharedArraySegment] = None
        self._epoch = 0

    @property
    def name(self) -> str:
        return self.base

    @property
    def epoch(self) -> int:
        return self._epoch

    @classmethod
    def create(cls, name: Optional[str] = None) -> "PlanArchive":
        """Create an empty archive (epoch 0: nothing published yet)."""
        if name is None:
            name = f"{SEGMENT_PREFIX}plans-{secrets.token_hex(8)}"
        directory = SharedArraySegment.create(
            {"epoch": np.zeros(1, dtype=np.int64)}, name=name
        )
        return cls(directory, name)

    def publish(self, exports: Dict[str, Dict[str, np.ndarray]]) -> int:
        """Publish a new epoch holding *exports*; returns the epoch.

        *exports* maps plan-key strings to
        :meth:`~repro.perf.plancache.MethodPlanCache.export_arrays`
        dictionaries.  The whole mapping is written each time — epochs
        are snapshots, not deltas, so a late-joining worker needs only
        the newest one.
        """
        epoch = self._epoch + 1
        keys = sorted(exports)
        key_blob, key_offsets = _pack_strings(keys)
        arrays: Dict[str, np.ndarray] = {
            "__commit__": np.zeros(1, dtype=np.int64),
            "__keys_blob__": key_blob,
            "__keys_offsets__": key_offsets,
        }
        entries = 0
        for i, key in enumerate(keys):
            for field, array in exports[key].items():
                arrays[f"k{i}:{field}"] = array
            entries += len(exports[key]["entry_method"])
        data = SharedArraySegment.create(arrays, name=f"{self.base}-e{epoch}")
        # commit stamp last: a reader that attached a half-written
        # republished segment sees a stale stamp and retries
        data.arrays["__commit__"][0] = epoch
        self._directory.arrays["epoch"][0] = epoch
        old = self._data
        self._data = data
        self._epoch = epoch
        if old is not None:
            old.unlink()
        _emit_plan(
            "plan.publish",
            segment=self.base,
            epoch=epoch,
            keys=len(keys),
            entries=entries,
            bytes=data.nbytes,
        )
        return epoch

    def unlink(self) -> None:
        """Destroy the directory and the live epoch; idempotent."""
        if self._data is not None:
            try:
                self._data.unlink()
            except GAError:  # pragma: no cover - defensive
                pass
            self._data = None
        try:
            self._directory.unlink()
        except GAError:  # pragma: no cover - defensive
            pass


class PlanArchiveReader:
    """Worker-side view of a :class:`PlanArchive`."""

    def __init__(self, directory: SharedArraySegment, base: str) -> None:
        self._directory = directory
        self.base = base
        self._data: Optional[SharedArraySegment] = None
        self._epoch = 0
        self._exports: Optional[Dict[str, Dict[str, np.ndarray]]] = None

    @classmethod
    def attach(cls, base: str) -> "PlanArchiveReader":
        return cls(SharedArraySegment.attach(base, readonly=True), base)

    @property
    def epoch(self) -> int:
        return self._epoch

    def snapshot(
        self, retries: int = 8
    ) -> Tuple[int, Dict[str, Dict[str, np.ndarray]]]:
        """``(epoch, {plan_key: arrays})`` for the newest committed epoch.

        The returned arrays are read-only views into the attached data
        segment, which stays mapped (and therefore valid even after the
        owner republishes and unlinks the epoch) until the next
        :meth:`snapshot` call or :meth:`close`.  Retries around a
        republish racing the attach; raises :class:`GAError` when no
        consistent snapshot can be obtained.
        """
        for _ in range(retries):
            epoch = int(self._directory.arrays["epoch"][0])
            if epoch == 0:
                return 0, {}
            if epoch == self._epoch and self._exports is not None:
                return epoch, self._exports
            try:
                data = SharedArraySegment.attach(
                    f"{self.base}-e{epoch}", readonly=True
                )
            except FileNotFoundError:
                continue  # republished under our feet; re-read the epoch
            if int(data.arrays["__commit__"][0]) != epoch:
                data.close()
                continue
            keys = _unpack_strings(
                data.arrays["__keys_blob__"], data.arrays["__keys_offsets__"]
            )
            exports: Dict[str, Dict[str, np.ndarray]] = {}
            for i, key in enumerate(keys):
                prefix = f"k{i}:"
                exports[key] = {
                    field[len(prefix):]: array
                    for field, array in data.arrays.items()
                    if field.startswith(prefix)
                }
            if self._data is not None:
                self._data.close()
            self._data = data
            self._epoch = epoch
            self._exports = exports
            _emit_plan(
                "plan.attach",
                segment=self.base,
                epoch=epoch,
                keys=len(keys),
                entries=sum(len(e["entry_method"]) for e in exports.values()),
            )
            return epoch, exports
        raise GAError(
            f"plan archive {self.base!r}: no consistent snapshot "
            f"after {retries} attempts"
        )

    def close(self) -> None:
        self._exports = None
        if self._data is not None:
            self._data.close()
            self._data = None
        self._directory.close()


# ----------------------------------------------------------------------
# genome / fitness shuttle
# ----------------------------------------------------------------------
class GenomeShuttle:
    """One generation's genomes and results in a single segment.

    The coordinator packs the genomes as an int64 ``(n, width)`` matrix
    next to a zeroed float64 result vector; workers attach writable,
    read their ``[lo, hi)`` genome rows straight from the mapping and
    write fitnesses into the same rows of the result vector.  Ranges
    are disjoint, so concurrent workers never touch the same bytes,
    and a resubmitted range (after a worker death) simply overwrites
    its slice with the identical pure-function values.
    """

    def __init__(self, segment: SharedArraySegment) -> None:
        self.segment = segment

    @property
    def name(self) -> str:
        return self.segment.name

    @classmethod
    def publish(cls, genomes: Sequence[Sequence[int]]) -> "GenomeShuttle":
        """Pack *genomes* into a fresh owned segment.

        Raises :class:`ValueError` for ragged genome lists — callers
        treat that as "use the pickle path".
        """
        try:
            matrix = np.array([tuple(g) for g in genomes], dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"genomes must be rectangular to pack: {exc}") from exc
        if matrix.ndim != 2:
            raise ValueError("genomes must be rectangular to pack")
        segment = SharedArraySegment.create(
            {
                "genomes": matrix,
                "results": np.zeros(len(matrix), dtype=np.float64),
            }
        )
        return cls(segment)

    @classmethod
    def attach(cls, name: str) -> "GenomeShuttle":
        """Worker-side writable attachment (results are filled in place)."""
        return cls(SharedArraySegment.attach(name, readonly=False))

    def genome_rows(self, lo: int, hi: int) -> List[Tuple[int, ...]]:
        """The ``[lo, hi)`` genomes as plain tuples."""
        matrix = self.segment.arrays["genomes"]
        return [tuple(int(v) for v in row) for row in matrix[lo:hi]]

    def write_results(self, lo: int, values: Sequence[float]) -> None:
        """Store a completed range's fitnesses at row *lo* onward."""
        results = self.segment.arrays["results"]
        results[lo : lo + len(values)] = values

    def results(self) -> np.ndarray:
        """A private copy of the result vector (coordinator side)."""
        return self.segment.arrays["results"].copy()

    def close(self) -> None:
        self.segment.close()

    def unlink(self) -> None:
        self.segment.unlink()
