/* Compiled twins of the two scalar invocation-propagation loops.
 *
 * Built at runtime by repro/perf/native.py (cc -O2 -fPIC -shared) and
 * loaded through ctypes; numba compiles the same loops from their
 * Python twins when it is installed.  Both kernels replace pure-Python
 * scalar loops whose operation order is fully determined, so a C
 * double performs the identical IEEE-754 operation sequence and the
 * results are bitwise equal to the interpreter's (no -ffast-math, no
 * reassociation).  NumPy reductions (ndarray.sum, np.dot) are *not*
 * reimplemented here: their pairwise/BLAS accumulation order is an
 * implementation detail this repo must reproduce, so those stay in
 * NumPy (see repro/perf/batch.py::batched_cache_pressure).
 *
 * Error protocol: both kernels return 0 on success and -(mid + 1)
 * when method `mid` is invoked but has no compiled version — the
 * Python wrapper raises the same SimulationError the reference loop
 * raises.
 */

#include <stdint.h>

/* Mirror of EvaluationAccelerator._propagate over a batch of
 * representative rows (the Opt scenario's accounting hot loop).
 *
 * resolved:  (n_reps, n_methods) cache-entry ids, -1 = unresolved
 * self_rate: per-entry residual self-recursion rate
 * edge_offsets/edge_callees/edge_rates: CSR of the per-entry residual
 *            forward edges, in edge order
 * counts:    (n_reps, n_methods) output, fully written by the kernel
 */
int64_t repro_opt_propagate_batch(
    int64_t n_reps,
    int64_t n_methods,
    int64_t entry_id,
    const int64_t *resolved,
    const double *self_rate,
    const int64_t *edge_offsets,
    const int64_t *edge_callees,
    const double *edge_rates,
    double *counts)
{
    int64_t r, m, mid, k;
    for (r = 0; r < n_reps; r++) {
        const int64_t *row = resolved + r * n_methods;
        double *c_row = counts + r * n_methods;
        for (m = 0; m < n_methods; m++)
            c_row[m] = 0.0;
        c_row[entry_id] = 1.0;
        for (mid = 0; mid < n_methods; mid++) {
            double c = c_row[mid];
            int64_t entry;
            double sr;
            if (c <= 0.0)
                continue;
            entry = row[mid];
            if (entry < 0)
                return -(mid + 1);
            sr = self_rate[entry];
            if (sr > 0.0) {
                c = c / (1.0 - sr);
                c_row[mid] = c;
            }
            for (k = edge_offsets[entry]; k < edge_offsets[entry + 1]; k++)
                c_row[edge_callees[k]] += c * edge_rates[k];
        }
    }
    return 0;
}

/* Cache-blocked variant of repro_opt_propagate_batch.
 *
 * Processes representatives in blocks of `block`, walking methods in
 * the outer loop within each block over a (n_methods, block)
 * method-major scratch matrix and transposing the finished block back
 * into the rep-major counts output.  For a given representative the
 * operation sequence — the zero fill, the entry seed, the mid-order
 * self-rate division and edge accumulations — is exactly the rep-major
 * kernel's, so every row of counts is bitwise identical; the blocking
 * only changes *which other representatives'* work happens between two
 * of one representative's operations.  The win is locality: within a
 * block, one method's cache entry (self_rate + CSR row) is loaded once
 * and applied to every representative while hot, instead of being
 * re-fetched per representative after the whole program's worth of
 * other entries evicted it.
 *
 * scratch: (n_methods, block) caller-provided working matrix
 *
 * Error protocol matches the rep-major kernel except that when several
 * representatives in one block miss different methods, the reported
 * mid is the first in (method, representative) order rather than
 * (representative, method) order — success paths are unaffected.
 */
int64_t repro_opt_propagate_blocked(
    int64_t n_reps,
    int64_t n_methods,
    int64_t entry_id,
    int64_t block,
    const int64_t *resolved,
    const double *self_rate,
    const int64_t *edge_offsets,
    const int64_t *edge_callees,
    const double *edge_rates,
    double *scratch,
    double *counts)
{
    int64_t b0, r, m, mid, k, bw;
    for (b0 = 0; b0 < n_reps; b0 += block) {
        bw = n_reps - b0;
        if (bw > block)
            bw = block;
        for (m = 0; m < n_methods; m++) {
            double *row = scratch + m * block;
            for (r = 0; r < bw; r++)
                row[r] = 0.0;
        }
        {
            double *row = scratch + entry_id * block;
            for (r = 0; r < bw; r++)
                row[r] = 1.0;
        }
        for (mid = 0; mid < n_methods; mid++) {
            double *c_m = scratch + mid * block;
            const int64_t *res = resolved + b0 * n_methods + mid;
            for (r = 0; r < bw; r++) {
                double c = c_m[r];
                int64_t entry;
                double sr;
                if (c <= 0.0)
                    continue;
                entry = res[r * n_methods];
                if (entry < 0)
                    return -(mid + 1);
                sr = self_rate[entry];
                if (sr > 0.0) {
                    c = c / (1.0 - sr);
                    c_m[r] = c;
                }
                for (k = edge_offsets[entry]; k < edge_offsets[entry + 1]; k++)
                    scratch[edge_callees[k] * block + r] += c * edge_rates[k];
            }
        }
        for (r = 0; r < bw; r++) {
            double *out = counts + (b0 + r) * n_methods;
            for (m = 0; m < n_methods; m++)
                out[m] = scratch[m * block + r];
        }
    }
    return 0;
}

/* Mirror of EvaluationAccelerator._propagate_adaptive over a batch of
 * representative columns (the Adapt scenario's matrix propagation).
 *
 * Promoted methods resolve their compiled version per representative
 * through entry_matrix (indexed by promoted_slot); baseline methods
 * use the per-method baseline CSR shared by every representative.
 * Each representative runs the serial reference's scalar chain, so
 * every column of the result is the serial result to the last bit.
 *
 * entry_matrix:  (n_reps, n_promoted) cache-entry ids
 * promoted_slot: per-method column index into entry_matrix rows, or
 *                -1 for baseline methods
 * base_present:  per-method flag: 1 when the baseline skeleton holds
 *                a compiled version for the method
 * counts:        (n_reps, n_methods) output, fully written
 */
int64_t repro_adaptive_propagate_matrix(
    int64_t n_reps,
    int64_t n_methods,
    int64_t entry_id,
    int64_t n_promoted,
    const int64_t *entry_matrix,
    const int64_t *promoted_slot,
    const double *entry_self_rate,
    const int64_t *entry_offsets,
    const int64_t *entry_callees,
    const double *entry_rates,
    const uint8_t *base_present,
    const double *base_self_rate,
    const int64_t *base_offsets,
    const int64_t *base_callees,
    const double *base_rates,
    double *counts)
{
    int64_t r, m, mid, k;
    for (r = 0; r < n_reps; r++) {
        const int64_t *entries = entry_matrix + r * n_promoted;
        double *c_row = counts + r * n_methods;
        for (m = 0; m < n_methods; m++)
            c_row[m] = 0.0;
        c_row[entry_id] = 1.0;
        for (mid = 0; mid < n_methods; mid++) {
            double c = c_row[mid];
            double sr;
            int64_t lo, hi, slot;
            const int64_t *cal;
            const double *rat;
            if (c <= 0.0)
                continue;
            slot = promoted_slot[mid];
            if (slot >= 0) {
                int64_t e = entries[slot];
                if (e < 0)
                    return -(mid + 1);
                sr = entry_self_rate[e];
                lo = entry_offsets[e];
                hi = entry_offsets[e + 1];
                cal = entry_callees;
                rat = entry_rates;
            } else {
                if (!base_present[mid])
                    return -(mid + 1);
                sr = base_self_rate[mid];
                lo = base_offsets[mid];
                hi = base_offsets[mid + 1];
                cal = base_callees;
                rat = base_rates;
            }
            if (sr > 0.0) {
                c = c / (1.0 - sr);
                c_row[mid] = c;
            }
            for (k = lo; k < hi; k++)
                c_row[cal[k]] += c * rat[k];
        }
    }
    return 0;
}

/* Cache-blocked variant of repro_adaptive_propagate_matrix, with the
 * same block structure (and the same bitwise-identity argument and
 * error-order caveat) as repro_opt_propagate_blocked.  Baseline
 * methods additionally benefit from the method-major order: their
 * shared CSR row is resolved once per (method, block) instead of once
 * per (representative, method).
 *
 * scratch: (n_methods, block) caller-provided working matrix
 */
int64_t repro_adaptive_propagate_blocked(
    int64_t n_reps,
    int64_t n_methods,
    int64_t entry_id,
    int64_t n_promoted,
    int64_t block,
    const int64_t *entry_matrix,
    const int64_t *promoted_slot,
    const double *entry_self_rate,
    const int64_t *entry_offsets,
    const int64_t *entry_callees,
    const double *entry_rates,
    const uint8_t *base_present,
    const double *base_self_rate,
    const int64_t *base_offsets,
    const int64_t *base_callees,
    const double *base_rates,
    double *scratch,
    double *counts)
{
    int64_t b0, r, m, mid, k, bw;
    for (b0 = 0; b0 < n_reps; b0 += block) {
        bw = n_reps - b0;
        if (bw > block)
            bw = block;
        for (m = 0; m < n_methods; m++) {
            double *row = scratch + m * block;
            for (r = 0; r < bw; r++)
                row[r] = 0.0;
        }
        {
            double *row = scratch + entry_id * block;
            for (r = 0; r < bw; r++)
                row[r] = 1.0;
        }
        for (mid = 0; mid < n_methods; mid++) {
            double *c_m = scratch + mid * block;
            int64_t slot = promoted_slot[mid];
            for (r = 0; r < bw; r++) {
                double c = c_m[r];
                double sr;
                int64_t lo, hi;
                const int64_t *cal;
                const double *rat;
                if (c <= 0.0)
                    continue;
                if (slot >= 0) {
                    int64_t e = entry_matrix[(b0 + r) * n_promoted + slot];
                    if (e < 0)
                        return -(mid + 1);
                    sr = entry_self_rate[e];
                    lo = entry_offsets[e];
                    hi = entry_offsets[e + 1];
                    cal = entry_callees;
                    rat = entry_rates;
                } else {
                    if (!base_present[mid])
                        return -(mid + 1);
                    sr = base_self_rate[mid];
                    lo = base_offsets[mid];
                    hi = base_offsets[mid + 1];
                    cal = base_callees;
                    rat = base_rates;
                }
                if (sr > 0.0) {
                    c = c / (1.0 - sr);
                    c_m[r] = c;
                }
                for (k = lo; k < hi; k++)
                    scratch[cal[k] * block + r] += c * rat[k];
            }
        }
        for (r = 0; r < bw; r++) {
            double *out = counts + (b0 + r) * n_methods;
            for (m = 0; m < n_methods; m++)
                out[m] = scratch[m * block + r];
        }
    }
    return 0;
}
