"""Command-line interface: ``repro-inline`` / ``python -m repro``.

Subcommands
-----------
``run``      run one benchmark under a scenario/machine/heuristic
``tune``     run the GA tuner for a standard task
``campaign`` tune the arch x scenario x metric grid concurrently
``serve``    run the persistent tuning service daemon
``submit``   submit a tuning job to a running daemon
``jobs``     list/inspect a daemon's jobs
``store``    inspect/compact/migrate a sharded evaluation-store tier
``telemetry`` summarize a campaign's --telemetry directory
``figure``   regenerate a paper figure (1, 2, 5-10) as ASCII charts
``table``    regenerate a paper table (4 or 5)
``list``     show available benchmarks, machines, scenarios and tasks
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.arch import available_machines, get_machine
from repro.core.metrics import Metric
from repro.core.scenarios import STANDARD_TASKS, get_task, task_names
from repro.core.tuner import DEFAULT_GA_CONFIG, InliningTuner
from repro.errors import ReproError
from repro.jvm.inlining import JIKES_DEFAULT_PARAMETERS, NO_INLINING, InliningParameters
from repro.jvm.runtime import VirtualMachine
from repro.jvm.scenario import get_scenario
from repro.search.registry import STRATEGY_NAMES
from repro.workloads.suites import DACAPO_JBB, SPECJVM98, get_benchmark

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-inline",
        description="GA-tuned JIT inlining heuristics "
        "(reproduction of Cavazos & O'Boyle, SC 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one benchmark")
    p_run.add_argument("benchmark")
    p_run.add_argument("--machine", default="pentium4", choices=available_machines())
    p_run.add_argument("--scenario", default="opt")
    p_run.add_argument(
        "--params",
        default="default",
        help="'default', 'none', or five comma-separated integers",
    )
    p_run.add_argument("--seed", type=int, default=0, help="workload seed")

    p_tune = sub.add_parser("tune", help="tune the heuristic for a standard task")
    p_tune.add_argument("task", help=f"one of: {', '.join(task_names())}")
    p_tune.add_argument("--generations", type=int, default=DEFAULT_GA_CONFIG.generations)
    p_tune.add_argument("--population", type=int, default=DEFAULT_GA_CONFIG.population_size)
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default="ga",
        help="search strategy (default: the paper's GA; see docs/SEARCH.md)",
    )
    p_tune.add_argument("--quiet", action="store_true")

    p_camp = sub.add_parser(
        "campaign",
        help="tune the machine x scenario x metric grid concurrently, "
        "sharing one evaluation store",
    )
    p_camp.add_argument(
        "--machines",
        default="pentium4,powerpc-g4",
        help="comma-separated machine names",
    )
    p_camp.add_argument(
        "--scenarios", default="adapt,opt", help="comma-separated scenario names"
    )
    p_camp.add_argument(
        "--metrics", default="balance", help="comma-separated metric names"
    )
    p_camp.add_argument("--generations", type=int, default=DEFAULT_GA_CONFIG.generations)
    p_camp.add_argument("--population", type=int, default=DEFAULT_GA_CONFIG.population_size)
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument(
        "--processes", type=int, default=None, help="pool size (default: one per task)"
    )
    p_camp.add_argument(
        "--serial", action="store_true", help="run tasks in-process, in order"
    )
    p_camp.add_argument(
        "--store",
        default=None,
        help="shared evaluation-store path: a JSONL file (legacy "
        "single-writer store) or a directory/*.tier path (sharded "
        "store tier). Default: .repro_cache/evaluations.jsonl, or "
        "<dir>/evaluations.jsonl with --dir",
    )
    p_camp.add_argument(
        "--store-tier",
        default=None,
        metavar="DIR",
        help="shorthand for --store pointing at a sharded "
        "store-tier directory (created if missing); workers append "
        "their own shards and the tier is compacted when the "
        "campaign finishes",
    )
    p_camp.add_argument(
        "--warm-start",
        choices=("exact", "neighbors"),
        default="exact",
        help="'exact' (default): cells answer recorded genomes from "
        "the store, bitwise-identical to a cold run; 'neighbors' "
        "(tier only, trajectory-changing): additionally seed each "
        "cell's GA population from the nearest workload profiles "
        "already in the tier",
    )
    p_camp.add_argument(
        "--dir",
        dest="campaign_dir",
        default=None,
        help="campaign directory: records completed cells in a "
        "crash-safe manifest and checkpoints GA state every generation",
    )
    p_camp.add_argument(
        "--resume",
        action="store_true",
        help="resume the campaign in --dir: skip completed cells, "
        "restart interrupted ones from their last GA generation",
    )
    p_camp.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempt budget per grid cell (default 3)",
    )
    p_camp.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds (default: none)",
    )
    p_camp.add_argument(
        "--telemetry",
        dest="telemetry_dir",
        default=None,
        metavar="DIR",
        help="write structured telemetry (JSONL events, metrics.prom) "
        "to DIR; inspect with 'repro telemetry summarize DIR'",
    )
    p_camp.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default="ga",
        help="search strategy every cell runs (default: the paper's GA; "
        "see docs/SEARCH.md)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent tuning service daemon over a state "
        "directory (async job API; see docs/SERVICE.md)",
    )
    p_serve.add_argument(
        "--dir",
        dest="state_dir",
        required=True,
        help="service state directory (journal, checkpoints, store tier)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="worker pool size (default 2)"
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max active (non-terminal) jobs before submissions are "
        "rejected with queue-full (default 64)",
    )
    p_serve.add_argument(
        "--quota",
        type=int,
        default=2,
        help="max in-flight cells per job (default 2)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=3, help="attempt budget per cell"
    )
    p_serve.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds (default: none)",
    )
    p_serve.add_argument(
        "--telemetry",
        dest="telemetry_dir",
        default=None,
        metavar="DIR",
        help="write service telemetry (JSONL events, metrics.prom) to DIR",
    )

    p_submit = sub.add_parser(
        "submit", help="submit a tuning job to a running service daemon"
    )
    p_submit.add_argument(
        "--dir", dest="state_dir", required=True, help="the daemon's state directory"
    )
    p_submit.add_argument(
        "--key",
        required=True,
        help="client job key (resubmitting the same key with the same "
        "spec returns the existing job)",
    )
    p_submit.add_argument("--machines", default="pentium4")
    p_submit.add_argument("--scenarios", default="adapt")
    p_submit.add_argument("--metrics", default="balance")
    p_submit.add_argument("--population", type=int, default=8)
    p_submit.add_argument("--generations", type=int, default=4)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--workload-seed", type=int, default=0)
    p_submit.add_argument("--priority", type=int, default=1)
    p_submit.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default="ga",
        help="search strategy for every cell of the job (part of the "
        "job's idempotency fingerprint)",
    )
    p_submit.add_argument(
        "--deadline", type=float, default=None, help="advisory deadline, seconds"
    )
    p_submit.add_argument(
        "--wait", action="store_true", help="block until the job is terminal"
    )

    p_jobs = sub.add_parser("jobs", help="list/inspect/cancel a daemon's jobs")
    p_jobs.add_argument(
        "--dir", dest="state_dir", required=True, help="the daemon's state directory"
    )
    p_jobs.add_argument(
        "--id", dest="job_id", default=None, help="show one job's cells"
    )
    p_jobs.add_argument(
        "action",
        nargs="?",
        choices=("cancel",),
        help="'cancel JOB_ID': cancel a queued or running job (queued "
        "jobs cancel immediately; running jobs stop at the next cell "
        "boundary)",
    )
    p_jobs.add_argument(
        "cancel_id",
        nargs="?",
        metavar="JOB_ID",
        help="job to cancel (with 'cancel')",
    )

    p_store = sub.add_parser(
        "store", help="inspect and maintain a sharded evaluation-store tier"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_stats = store_sub.add_parser(
        "stats",
        help="shard/pack sizes, per-context record counts, hit rates",
    )
    p_store_stats.add_argument("tier", help="store-tier directory")
    p_store_compact = store_sub.add_parser(
        "compact",
        help="fold cooled shards and existing packs into one indexed "
        "SQLite pack (crash-safe; shards with a live writer are skipped)",
    )
    p_store_compact.add_argument("tier", help="store-tier directory")
    p_store_compact.add_argument(
        "--include-hot",
        action="store_true",
        help="compact shards that still have a live writer too "
        "(only safe when you know those writers are done appending)",
    )
    p_store_migrate = store_sub.add_parser(
        "migrate",
        help="import a legacy single-file JSONL store into a tier "
        "(the legacy file is left untouched)",
    )
    p_store_migrate.add_argument("legacy", help="legacy JSONL store path")
    p_store_migrate.add_argument(
        "tier", help="store-tier directory (created if missing)"
    )

    p_tel = sub.add_parser(
        "telemetry", help="inspect a campaign's telemetry directory"
    )
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)
    p_tel_sum = tel_sub.add_parser(
        "summarize",
        help="render per-cell convergence and the failure timeline "
        "from a telemetry directory's JSONL events",
    )
    p_tel_sum.add_argument("directory", help="the --telemetry DIR of a campaign run")

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int, choices=(1, 2, 5, 6, 7, 8, 9, 10))
    p_fig.add_argument("--seed", type=int, default=0)

    p_tab = sub.add_parser("table", help="regenerate a paper table")
    p_tab.add_argument("number", type=int, choices=(4, 5))
    p_tab.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser(
        "sweep", help="one-at-a-time parameter sensitivity around the defaults"
    )
    p_sweep.add_argument("--machine", default="pentium4", choices=available_machines())
    p_sweep.add_argument("--scenario", default="opt")
    p_sweep.add_argument("--metric", default="total")
    p_sweep.add_argument("--points", type=int, default=7)
    p_sweep.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark subset (default: full SPECjvm98)",
    )

    p_report = sub.add_parser(
        "report", help="regenerate the EXPERIMENTS.md paper-vs-measured ledger"
    )
    p_report.add_argument("--output", default="EXPERIMENTS.md")

    sub.add_parser("list", help="list benchmarks, machines, scenarios, tasks")
    return parser


def _parse_params(text: str) -> InliningParameters:
    if text == "default":
        return JIKES_DEFAULT_PARAMETERS
    if text in ("none", "off"):
        return NO_INLINING
    values = [int(v) for v in text.split(",")]
    return InliningParameters.from_sequence(values)


def _cmd_run(args) -> int:
    program = get_benchmark(args.benchmark, seed=args.seed)
    machine = get_machine(args.machine)
    scenario = get_scenario(args.scenario)
    params = _parse_params(args.params)
    vm = VirtualMachine(machine, scenario)
    report = vm.run(program, params)
    print(f"benchmark : {report.benchmark}")
    print(f"machine   : {machine.name} ({machine.clock_ghz} GHz)")
    print(f"scenario  : {scenario.name}")
    print(f"heuristic : {params}")
    print(f"running   : {report.running_seconds:9.3f} s")
    print(f"compile   : {report.compile_seconds:9.3f} s")
    print(f"total     : {report.total_seconds:9.3f} s")
    print(f"icache    : {report.icache_factor:9.3f} x")
    print(
        f"compiled  : {report.methods_compiled_opt} optimized, "
        f"{report.methods_compiled_baseline} baseline, "
        f"{report.inline_sites} sites inlined"
    )
    return 0


def _cmd_tune(args) -> int:
    task = get_task(args.task)
    config = DEFAULT_GA_CONFIG.scaled(
        generations=args.generations,
        population_size=args.population,
        seed=args.seed,
    )
    hook = None
    if not args.quiet:
        hook = lambda stats: print(f"  {stats}")  # noqa: E731 - tiny CLI callback
        print(f"tuning {task} with {args.strategy} ...")
    tuned = InliningTuner(config, strategy=args.strategy).tune(
        task, SPECJVM98.programs(), on_generation=hook
    )
    print(f"tuned parameters : {tuned.params}")
    print(f"training fitness : {tuned.fitness:.6g} (default {tuned.default_fitness:.6g})")
    print(f"improvement      : {tuned.improvement:+.1%}")
    print(
        f"search           : {tuned.generations_run} generations, "
        f"{tuned.evaluations} evaluations, {tuned.wall_seconds:.1f}s"
    )
    return 0


def _cmd_campaign(args) -> int:
    from repro.experiments.campaign import grid_tasks, run_campaign
    from repro.experiments.tuning import _store_path
    from repro.resilience import RetryPolicy

    config = DEFAULT_GA_CONFIG.scaled(
        generations=args.generations,
        population_size=args.population,
        seed=args.seed,
    )
    tasks = grid_tasks(
        machines=[m.strip() for m in args.machines.split(",") if m.strip()],
        scenarios=[s.strip() for s in args.scenarios.split(",") if s.strip()],
        metrics=[m.strip() for m in args.metrics.split(",") if m.strip()],
        seed=args.seed,
    )
    if args.store_tier is not None:
        if args.store is not None:
            print("error: --store and --store-tier are mutually exclusive",
                  file=sys.stderr)
            return 2
        # create the tier up front so every worker resolves the path as
        # a tier (a bare nonexistent directory would look like a legacy
        # file path)
        from repro.perf.storetier import StoreTier

        StoreTier(args.store_tier)
        store = args.store_tier
    elif args.store is not None:
        store = args.store
    elif args.campaign_dir is not None:
        store = None  # the campaign directory supplies its default store
    else:
        store = _store_path()
    policy = RetryPolicy(
        max_attempts=args.retries, timeout=args.task_timeout, seed=args.seed
    )
    where = f"dir={args.campaign_dir}" if args.campaign_dir else f"store={store or 'none'}"
    print(f"campaign: {len(tasks)} tasks, {where}")
    result = run_campaign(
        tasks,
        ga_config=config,
        store_path=store,
        processes=args.processes,
        serial=args.serial,
        progress=lambda msg: print(f"  {msg}"),
        campaign_dir=args.campaign_dir,
        resume=args.resume,
        retry_policy=policy,
        telemetry_dir=args.telemetry_dir,
        warm_start_neighbors=args.warm_start == "neighbors",
        strategy=args.strategy,
    )
    print(
        f"{'task':<24} {'status':>7} {'fitness':>10} {'improve':>8} "
        f"{'evals':>6} {'recalls':>8}"
    )
    for r in result.results:
        status = "PASS" if r.ok else "FAIL"
        if r.tuned is not None:
            print(
                f"{r.task_name:<24} {status:>7} {r.tuned.fitness:>10.5g} "
                f"{r.tuned.improvement:>+8.1%} {r.tuned.evaluations:>6} "
                f"{r.tuned.store_hits:>8}"
            )
        else:
            print(f"{r.task_name:<24} {status:>7} {'-':>10} {'-':>8} {'-':>6} {'-':>8}")
    totals = result.accelerator_totals()
    print(
        f"campaign : {result.wall_seconds:.1f}s on {result.processes} "
        f"process(es); {result.total_evaluations} simulations, "
        f"{result.total_new_records} new store records"
    )
    print(
        f"accel    : report hit rate {totals['report_hit_rate']:.1%}, "
        f"method hit rate {totals['method_hit_rate']:.1%}, "
        f"batch dedup rate {totals['batch_dedup_rate']:.1%}"
    )
    if totals.get("plan_preloaded") or totals.get("plan_warm_hits"):
        print(
            f"plans    : {int(totals['plan_preloaded'])} entries preloaded "
            f"from the shared archive, {int(totals['plan_warm_hits'])} warm "
            f"hits, {int(totals['plan_recompiles'])} recompiles"
        )
    if not result.ok:
        for failure in result.failures:
            print(f"failure  : {failure}", file=sys.stderr)
        print(
            f"error: {len(result.failed_tasks)} of {len(result.results)} "
            f"cell(s) failed: {', '.join(result.failed_tasks)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.resilience import RetryPolicy
    from repro.service import ServiceDaemon

    policy = RetryPolicy(max_attempts=args.retries, timeout=args.task_timeout)
    daemon = ServiceDaemon(
        args.state_dir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        quota=args.quota,
        policy=policy,
        telemetry_dir=args.telemetry_dir,
    )
    daemon.start()
    host, port = daemon.api.address
    print(
        f"serving on {host}:{port} (state {args.state_dir}, "
        f"{args.workers} worker(s)); SIGTERM drains gracefully"
    )
    daemon.serve_forever()
    print("drained; bye")
    return 0


def _cmd_submit(args) -> int:
    from repro.service import ServiceClient, ServiceUnavailable

    job = {
        "key": args.key,
        "machines": [m.strip() for m in args.machines.split(",") if m.strip()],
        "scenarios": [s.strip() for s in args.scenarios.split(",") if s.strip()],
        "metrics": [m.strip() for m in args.metrics.split(",") if m.strip()],
        "population": args.population,
        "generations": args.generations,
        "seed": args.seed,
        "workload_seed": args.workload_seed,
        "priority": args.priority,
        "strategy": args.strategy,
    }
    if args.deadline is not None:
        job["deadline"] = args.deadline
    client = ServiceClient(args.state_dir)
    try:
        response = client.submit(job)
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not response.get("ok"):
        error = response.get("error", {})
        print(
            f"rejected ({error.get('code')}): {error.get('message')}",
            file=sys.stderr,
        )
        return 1
    dedup = " (deduplicated)" if response.get("deduplicated") else ""
    print(f"submitted {response['id']} state={response['state']}{dedup}")
    if args.wait:
        final = client.wait_job(response["id"])
        print(
            f"{final['id']}: {final['state']} "
            f"({final['cells_done']}/{final['cells']} cells)"
        )
        return 0 if final["state"] == "done" else 1
    return 0


def _cmd_jobs(args) -> int:
    from repro.service import ServiceClient, ServiceUnavailable

    client = ServiceClient(args.state_dir)
    try:
        if args.action == "cancel":
            if args.cancel_id is None:
                print("error: 'jobs cancel' needs a JOB_ID", file=sys.stderr)
                return 1
            response = client.cancel(job_id=args.cancel_id)
            if not response.get("ok"):
                error = response.get("error", {})
                print(f"error ({error.get('code')}): {error.get('message')}",
                      file=sys.stderr)
                return 1
            if response.get("cancelled"):
                print(f"{response['id']}: cancelled")
                return 0
            print(
                f"{response['id']}: already terminal "
                f"(state={response['state']}); nothing to cancel"
            )
            return 1
        if args.job_id is not None:
            response = client.result(args.job_id)
            if not response.get("ok"):
                error = response.get("error", {})
                print(f"error ({error.get('code')}): {error.get('message')}",
                      file=sys.stderr)
                return 1
            job = response["job"]
            print(
                f"{job['id']} key={job['key']} state={job['state']} "
                f"priority={job['priority']}"
            )
            for name, cell in sorted(response["cells"].items()):
                line = f"  {name:<30} {cell.get('state', '?')}"
                if cell.get("state") == "done":
                    line += f"  evaluations={cell.get('evaluations')}"
                elif cell.get("error"):
                    line += f"  {cell['error']}"
                print(line)
            return 0
        response = client.jobs()
        jobs = response.get("jobs", [])
        if not jobs:
            print("no jobs")
            return 0
        print(f"{'id':<12} {'key':<20} {'state':<10} {'prio':>4} {'cells':>9}")
        for job in jobs:
            print(
                f"{job['id']:<12} {job['key'][:20]:<20} {job['state']:<10} "
                f"{job['priority']:>4} {job['cells_done']:>4}/{job['cells']:<4}"
            )
        return 0
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_store(args) -> int:
    from repro.perf.storetier import StoreTier, is_tier_path

    if args.store_command == "migrate":
        tier = StoreTier(args.tier)
        imported = tier.migrate_legacy(args.legacy)
        print(f"migrated {imported} record(s) from {args.legacy} into {args.tier}")
        return 0
    if not os.path.isdir(args.tier) or not is_tier_path(args.tier):
        print(f"error: {args.tier!r} is not a store-tier directory",
              file=sys.stderr)
        return 2
    tier = StoreTier(args.tier)
    if args.store_command == "compact":
        summary = tier.compact(include_hot=args.include_hot)
        print(
            f"compacted {summary['shards']} shard(s) + {summary['packs']} "
            f"pack(s) into {summary['records']} indexed record(s); "
            f"{summary['skipped_hot']} hot shard(s) skipped"
        )
        return 0
    stats = tier.stats()
    print(f"tier      : {stats['root']}")
    print(
        f"shards    : {len(stats['shards'])} "
        f"({sum(stats['shards'].values())} bytes, "
        f"{stats['hot_shards']} hot)"
    )
    print(
        f"packs     : {len(stats['packs'])} "
        f"({sum(stats['packs'].values())} bytes)"
    )
    print(f"profiles  : {stats['profiles']}")
    contexts = stats["contexts"]
    print(f"contexts  : {len(contexts)} ({sum(contexts.values())} records)")
    for context, count in sorted(contexts.items()):
        print(f"  {context[:56]:<58} {count:>8}")
    print(
        f"lifetime  : {stats['appends']} appends, {stats['hits']} hits, "
        f"{stats['misses']} misses (hit rate {stats['hit_rate']:.1%}), "
        f"{stats['compactions']} compaction(s), "
        f"{stats['bloom_skips']} bloom skip(s)"
    )
    return 0


def _cmd_telemetry(args) -> int:
    from repro.telemetry import summarize_directory

    if not os.path.isdir(args.directory):
        print(f"error: {args.directory!r} is not a directory", file=sys.stderr)
        return 2
    print(summarize_directory(args.directory), end="")
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import figures, formatting

    if args.number == 1:
        data = figures.figure1(workload_seed=args.seed)
        for name, comparison in data.items():
            print(f"--- Figure 1 ({name}) ---")
            print(formatting.format_comparison(comparison))
            print()
        return 0
    if args.number == 2:
        data = figures.figure2(workload_seed=args.seed)
        for bench, sweeps in data.items():
            for scen, sweep in sweeps.items():
                print(f"--- Figure 2: {bench} under {scen} ---")
                print(
                    formatting.format_bar_chart(
                        [str(d) for d in sweep.depths],
                        list(sweep.total_seconds),
                        reference=min(sweep.total_seconds),
                        value_format="{:.2f}s",
                    )
                )
                print(f"best depth: {sweep.best_depth}\n")
        return 0
    fig_fn = {
        5: figures.figure5,
        6: figures.figure6,
        7: figures.figure7,
        8: figures.figure8,
        9: figures.figure9,
    }.get(args.number)
    if fig_fn is not None:
        data = fig_fn(workload_seed=args.seed)
    else:
        data = figures.figure10(workload_seed=args.seed)
    for suite_name, comparison in data.items():
        print(f"--- Figure {args.number} on {suite_name} ---")
        print(formatting.format_comparison(comparison))
        print()
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import formatting, tables

    if args.number == 4:
        table = tables.table4(workload_seed=args.seed)
        headers = ["Parameter"] + list(table.columns)
        rows = [[label] + cells for label, cells in table.rows()]
        print("Table 4: tuned inlining parameter values")
        print(formatting.format_table(headers, rows))
        return 0
    rows5 = tables.table5(workload_seed=args.seed)
    headers = ["Scenario", "SPEC run", "SPEC total", "DaCapo run", "DaCapo total"]
    body = [
        [
            r.scenario,
            formatting.format_percent(r.spec_running_reduction),
            formatting.format_percent(r.spec_total_reduction),
            formatting.format_percent(r.dacapo_running_reduction),
            formatting.format_percent(r.dacapo_total_reduction),
        ]
        for r in rows5
    ]
    print("Table 5: average reductions of the tuned heuristic vs default")
    print(formatting.format_table(headers, body))
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sensitivity import sweep_all
    from repro.core.evaluation import HeuristicEvaluator
    from repro.experiments.formatting import format_bar_chart

    if args.benchmarks:
        programs = [get_benchmark(name.strip()) for name in args.benchmarks.split(",")]
    else:
        programs = SPECJVM98.programs()
    evaluator = HeuristicEvaluator(
        programs=programs,
        machine=get_machine(args.machine),
        scenario=get_scenario(args.scenario),
        metric=Metric.parse(args.metric),
    )
    sweeps = sweep_all(evaluator, points_per_axis=args.points)
    print(
        f"sensitivity around the Jikes defaults "
        f"({args.scenario}/{args.machine}/{args.metric}); lower is better:\n"
    )
    for name, sweep in sweeps.items():
        print(f"--- {name} (spread {sweep.spread:.1%}, best {sweep.best_value}) ---")
        print(
            format_bar_chart(
                [str(v) for v in sweep.values],
                list(sweep.fitness),
                reference=min(sweep.fitness),
                value_format="{:.4g}",
            )
        )
        print()
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(progress=print)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text)} bytes)")
    return 0


def _cmd_list(_args) -> int:
    print("benchmarks (SPECjvm98, training):")
    for spec in SPECJVM98:
        print(f"  {spec.name:<10} {spec.description}")
    print("benchmarks (DaCapo+JBB, test):")
    for spec in DACAPO_JBB:
        print(f"  {spec.name:<10} {spec.description}")
    print(f"machines  : {', '.join(available_machines())}")
    print("scenarios : adapt, opt")
    print(f"tasks     : {', '.join(task_names())} (+ Opt:Run for Figure 10)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "tune": _cmd_tune,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "store": _cmd_store,
        "telemetry": _cmd_telemetry,
        "figure": _cmd_figure,
        "table": _cmd_table,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
