"""Deterministic random-number utilities.

Reproducibility is a first-class requirement: the paper's contribution is
an *off-line* tuning pass, and every experiment in this repository must
regenerate identical numbers run-to-run.  All randomness therefore flows
through :func:`rng_for`, which derives an independent
:class:`numpy.random.Generator` from a stable string key and an integer
seed.  Two call sites that use different keys get statistically
independent streams; the same (key, seed) pair always yields the same
stream, regardless of import order or call ordering elsewhere.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_hash", "rng_for", "spawn_seeds"]

_MASK64 = (1 << 64) - 1


def stable_hash(key: str) -> int:
    """Return a stable 64-bit hash of *key*.

    Python's builtin ``hash`` is salted per-process; this uses BLAKE2b so
    the value is identical across runs and platforms.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def rng_for(key: str, seed: int = 0) -> np.random.Generator:
    """Return an independent generator for the stream named *key*.

    Parameters
    ----------
    key:
        A human-readable stream name, e.g. ``"workload:compress"`` or
        ``"ga:init"``.  Distinct keys give independent streams.
    seed:
        A user-level seed; the same key with different seeds gives
        independent streams as well.
    """
    mixed = (stable_hash(key) ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    return np.random.default_rng(mixed)


def spawn_seeds(key: str, seed: int, count: int) -> list:
    """Derive *count* child seeds from a (key, seed) pair.

    Useful for fanning a single experiment seed out to per-benchmark or
    per-generation sub-streams without correlation.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = rng_for(key, seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]
