"""Pentium-4 machine model.

The paper's Intel platform is a 2.8 GHz Pentium-4 with a large effective
instruction working set (the paper reports 512 KB — its trace cache plus
L2 keep a lot of hot code close).  The Pentium-4's very deep pipeline
makes calls and mispredicted branches expensive, so inlining pays off
strongly; the large cache means code bloat is tolerated up to a high
threshold.  Optimizing compilation is fast in absolute terms (high
clock) but costs the same *cycles* per instruction as on the PPC, so
compile time is a large share of total time for short-running,
code-heavy programs.
"""

from __future__ import annotations

from repro.arch.base import MachineModel, register_machine

__all__ = ["PENTIUM4"]

PENTIUM4 = register_machine(
    MachineModel(
        name="pentium4",
        clock_ghz=2.8,
        # Deep 20-stage pipeline: call/return with argument setup is costly.
        call_overhead_cycles=24.0,
        # Effective hot-code working set (estimated machine instructions).
        # Large: trace cache + 512KB L2 keep hot JIT code resident.
        icache_capacity=48_000.0,
        icache_miss_penalty=0.55,
        compile_cycles_per_instruction={
            0: 60.0,      # baseline: straight bytecode-to-machine translation
            1: 6_000.0,   # O1: local optimizations + inlining
            2: 25_000.0,  # O2: SSA-based global optimization
        },
        opt_speed_factor={
            0: 1.00,
            1: 0.62,
            2: 0.50,
        },
        branch_misprediction_cycles=20.0,
    )
)
