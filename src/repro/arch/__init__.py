"""Architecture models for the JVM simulator.

The paper tunes inlining heuristics on two machines — a 2.8 GHz Pentium-4
and a 533 MHz PowerPC G4 — and finds architecture-specific optima
(Table 4).  Those differences are driven by cache capacity, call cost and
compile throughput, which is exactly what :class:`MachineModel` encodes.
"""

from repro.arch.base import MachineModel, get_machine, register_machine, available_machines
from repro.arch.x86 import PENTIUM4
from repro.arch.ppc import POWERPC_G4

__all__ = [
    "MachineModel",
    "get_machine",
    "register_machine",
    "available_machines",
    "PENTIUM4",
    "POWERPC_G4",
]
