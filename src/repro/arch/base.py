"""Parametric machine model used by the JVM simulator.

The simulator accounts for time in *cycles* and converts to seconds with
the clock rate.  A :class:`MachineModel` carries every
architecture-dependent constant the cost model needs:

* ``call_overhead_cycles`` — cycles spent on a call/return sequence
  (argument marshalling, branch, prologue/epilogue).  Removing this is
  the direct benefit of inlining.
* ``icache_capacity`` — instructions that fit in the instruction-cache
  working set.  When the hot code (post-inlining) outgrows this, a miss
  penalty is applied; this is the indirect *cost* of inlining.
* ``compile_cycles_per_instruction`` — per-optimization-level compile
  throughput.  Optimizing compilation is orders of magnitude slower than
  baseline compilation, which is why total time (running + compile) can
  degrade under aggressive inlining.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from repro.errors import ConfigurationError

__all__ = ["MachineModel", "register_machine", "get_machine", "available_machines"]


@dataclass(frozen=True)
class MachineModel:
    """Immutable description of a target machine.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"pentium4"``.
    clock_ghz:
        Clock rate in GHz; used only to convert cycles to seconds for
        reporting, never for decisions.
    call_overhead_cycles:
        Cycles per dynamic call that inlining can eliminate.
    icache_capacity:
        Hot-working-set capacity in *estimated machine instructions*
        (the same unit the inlining heuristic reasons about).
    icache_miss_penalty:
        Dimensionless coefficient: running time is multiplied by
        ``1 + penalty * pressure`` where pressure measures how far the
        hot code overflows the cache (see
        :class:`repro.jvm.codecache.CodeCache`).
    compile_cycles_per_instruction:
        Mapping from optimization level (0 = baseline) to compile cost in
        cycles per estimated instruction of (post-inlining) code.
    opt_speed_factor:
        Mapping from optimization level to the relative per-instruction
        execution cost of generated code (baseline = 1.0; optimized < 1).
    branch_misprediction_cycles:
        Cycles charged for hard-to-predict control flow; deeper pipelines
        (Pentium-4) pay more, which raises the value of straightening
        code via inlining.
    app_cycle_factor:
        Cycles-per-work-unit multiplier for *application* code relative
        to the reference machine.  Captures memory-system quality: the
        G4's slow bus and small caches inflate application cycles, while
        the JIT compiler's compact working set is largely unaffected —
        which is why compilation is a smaller share of total time on the
        PPC and the paper's PPC total-time gains are modest.
    """

    name: str
    clock_ghz: float
    call_overhead_cycles: float
    icache_capacity: float
    icache_miss_penalty: float
    compile_cycles_per_instruction: Mapping[int, float]
    opt_speed_factor: Mapping[int, float]
    branch_misprediction_cycles: float = 10.0
    app_cycle_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigurationError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.call_overhead_cycles < 0:
            raise ConfigurationError("call_overhead_cycles must be non-negative")
        if self.icache_capacity <= 0:
            raise ConfigurationError("icache_capacity must be positive")
        if self.icache_miss_penalty < 0:
            raise ConfigurationError("icache_miss_penalty must be non-negative")
        if self.app_cycle_factor <= 0:
            raise ConfigurationError("app_cycle_factor must be positive")
        if 0 not in self.compile_cycles_per_instruction:
            raise ConfigurationError("compile_cycles_per_instruction must define level 0 (baseline)")
        if 0 not in self.opt_speed_factor:
            raise ConfigurationError("opt_speed_factor must define level 0 (baseline)")
        for level, rate in self.compile_cycles_per_instruction.items():
            if rate <= 0:
                raise ConfigurationError(f"compile rate for level {level} must be positive")
        for level, factor in self.opt_speed_factor.items():
            if not 0 < factor <= 1.5:
                raise ConfigurationError(
                    f"opt_speed_factor for level {level} must be in (0, 1.5], got {factor}"
                )

    @property
    def max_opt_level(self) -> int:
        """Highest optimization level this machine's compiler supports."""
        return max(self.compile_cycles_per_instruction)

    def compile_rate(self, level: int) -> float:
        """Compile cost in cycles per estimated instruction at *level*."""
        try:
            return self.compile_cycles_per_instruction[level]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no compiler for optimization level {level}"
            ) from None

    def speed_factor(self, level: int) -> float:
        """Relative execution cost of code generated at *level*."""
        try:
            return self.opt_speed_factor[level]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no speed factor for optimization level {level}"
            ) from None

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds on this machine."""
        return cycles / (self.clock_ghz * 1e9)

    def scaled(self, **overrides) -> "MachineModel":
        """Return a copy with selected fields replaced.

        Used by the ablation benches (e.g. disabling the I-cache model by
        setting ``icache_miss_penalty=0``).
        """
        return replace(self, **overrides)


_REGISTRY: Dict[str, MachineModel] = {}


def register_machine(model: MachineModel) -> MachineModel:
    """Add *model* to the global registry (idempotent for equal models)."""
    existing = _REGISTRY.get(model.name)
    if existing is not None and existing != model:
        raise ConfigurationError(f"machine {model.name!r} already registered with different values")
    _REGISTRY[model.name] = model
    return model


def get_machine(name: str) -> MachineModel:
    """Look up a registered machine by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_machines() -> list:
    """Names of all registered machines, sorted."""
    return sorted(_REGISTRY)
