"""PowerPC G4 machine model.

The paper's PowerPC platform is a 533 MHz G4 (7410) with a 64 KB L1
cache.  Relative to the Pentium-4 it has:

* a much smaller instruction working set — aggressive inlining overflows
  it quickly, which is why the GA finds a small MAX_INLINE_DEPTH on PPC
  (2 vs 10, Table 4);
* a short pipeline — calls and mispredictions are cheap, so the direct
  benefit of inlining is smaller;
* the same cycle-denominated compile cost, but because running time in
  cycles is comparatively higher at 533 MHz, compilation is a *smaller
  fraction* of total time, so total-time gains from taming the compiler
  are smaller (Table 5: 6-9% on PPC vs 17-37% on x86).
"""

from __future__ import annotations

from repro.arch.base import MachineModel, register_machine

__all__ = ["POWERPC_G4"]

POWERPC_G4 = register_machine(
    MachineModel(
        name="powerpc-g4",
        clock_ghz=0.533,
        # Short 4-stage pipeline: calls are cheap.
        call_overhead_cycles=9.0,
        # 64KB L1 I-cache at 4 bytes/instruction: ~16K-instruction hot set.
        icache_capacity=16_000.0,
        icache_miss_penalty=0.60,
        # The G4's short pipeline and simple in-order-friendly codegen
        # compile far more efficiently per cycle than the Pentium-4's
        # (whose effective IPC on the pointer-chasing compiler workload
        # is poor) — so compilation is a smaller share of total time,
        # which is why the paper's PPC total-time gains are modest.
        compile_cycles_per_instruction={
            0: 45.0,
            1: 2_000.0,
            2: 5_500.0,
        },
        opt_speed_factor={
            0: 1.00,
            1: 0.68,
            2: 0.58,
        },
        branch_misprediction_cycles=6.0,
        # slow bus + small caches: application loops stall more per
        # cycle than on the P4's large-L2 memory system
        app_cycle_factor=1.5,
    )
)
